// Scheduler behavior tests: PLB-HeC's phase structure, block selection
// quality and rebalancing; greedy, HDSS, Acosta and the static-profile
// oracle baseline. Uses the simulated engine with controlled noise.

#include <gtest/gtest.h>

#include <numeric>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/baselines/static_profile.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace plbhec {
namespace {

apps::SyntheticWorkload::Config medium_config() {
  apps::SyntheticWorkload::Config c;
  c.grains = 20'000;
  c.flops_per_grain = 5e7;
  c.bytes_per_grain = 2048;
  c.gpu_threads_per_grain = 32;
  return c;
}

rt::RunResult run_with(rt::Scheduler& sched, rt::Workload& w,
                       std::size_t machines = 2, std::uint64_t seed = 42) {
  sim::SimCluster cluster(sim::scenario(machines));
  rt::EngineOptions opts;
  opts.seed = seed;
  rt::SimEngine engine(cluster, opts);
  return engine.run(w, sched);
}

TEST(PlbHec, CompletesAndSelectsOnce) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecScheduler plb;
  const rt::RunResult r = run_with(plb, w);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(plb.stats().solves, 1u);
  EXPECT_GE(plb.stats().probe_rounds, 4u);
  EXPECT_EQ(plb.fractions().size(), r.units.size());
}

TEST(PlbHec, FractionsSumToOne) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecScheduler plb;
  const rt::RunResult r = run_with(plb, w, 4);
  ASSERT_TRUE(r.ok);
  const double sum = std::accumulate(plb.fractions().begin(),
                                     plb.fractions().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PlbHec, ModelingRespectsDataCap) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecOptions opts;
  opts.modeling_data_cap = 0.10;
  core::PlbHecScheduler plb(opts);
  const rt::RunResult r = run_with(plb, w);
  ASSERT_TRUE(r.ok);
  // Budgeted probes stop at the cap; only 1-grain keep-busy fillers (while
  // the slowest units finish their minimum probe count) may run past it,
  // so the overshoot must stay bounded by the cap itself.
  EXPECT_LE(plb.stats().modeling_grains, 2.0 * 0.10 * 20'000);
}

TEST(PlbHec, ModelsAreFittedForEveryUnit) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecScheduler plb;
  const rt::RunResult r = run_with(plb, w);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(plb.models().size(), r.units.size());
  for (const auto& m : plb.models()) EXPECT_TRUE(m.valid());
}

TEST(PlbHec, MaxBlockSecondsCapsExecutionBlocks) {
  // Bounded preemption latency (the warm-start-regression fix): with a
  // one-unit lease the equal-time selection hands the whole step_fraction
  // window (2500 grains, 2.5 s at 1 ms/grain) to that unit as a single
  // block. The service can only revoke or grow leases at block
  // boundaries, so max_block_seconds must clamp the block to the bound's
  // worth of predicted work.
  core::PlbHecOptions opts;
  opts.max_block_seconds = 0.010;
  core::PlbHecScheduler plb(opts);
  std::vector<rt::UnitInfo> units(1);
  units[0].id = 0;
  units[0].name = "slow.cpu";
  rt::WorkInfo work;
  work.name = "synthetic";
  work.total_grains = 10'000;
  work.initial_block = 16;
  plb.start(units, work);

  constexpr double kPerGrain = 1e-3;
  double now = 0.0;
  for (int i = 0; i < 64 && plb.stats().solves == 0; ++i) {
    const std::size_t g = plb.next_block(0, now);
    ASSERT_GT(g, 0u);
    rt::TaskObservation obs;
    obs.unit = 0;
    obs.grains = g;
    obs.exec_seconds = kPerGrain * static_cast<double>(g);
    obs.start_time = now;
    obs.finish_time = now + obs.exec_seconds;
    now = obs.finish_time;
    plb.on_complete(obs);
  }
  ASSERT_GE(plb.stats().solves, 1u);  // execution phase reached

  const std::size_t capped = plb.next_block(0, now);
  EXPECT_GE(capped, 1u);
  EXPECT_LE(capped,
            static_cast<std::size_t>(opts.max_block_seconds / kPerGrain));

  // The default (0) keeps the paper's behavior: the same drive without
  // the cap issues the full window in one block.
  core::PlbHecScheduler uncapped;
  uncapped.start(units, work);
  now = 0.0;
  for (int i = 0; i < 64 && uncapped.stats().solves == 0; ++i) {
    const std::size_t g = uncapped.next_block(0, now);
    ASSERT_GT(g, 0u);
    rt::TaskObservation obs;
    obs.unit = 0;
    obs.grains = g;
    obs.exec_seconds = kPerGrain * static_cast<double>(g);
    obs.start_time = now;
    obs.finish_time = now + obs.exec_seconds;
    now = obs.finish_time;
    uncapped.on_complete(obs);
  }
  ASSERT_GE(uncapped.stats().solves, 1u);
  EXPECT_GT(uncapped.next_block(0, now), 1'000u);
}

TEST(PlbHec, GpuGetsLargerShareThanCpuOnComputeBoundWork) {
  // Machine A: Tesla K20c vs 10-core Xeon — the GPU must win a compute-
  // bound division (the paper's Fig. 6 observation).
  apps::MatMulWorkload w(16384);
  core::PlbHecScheduler plb;
  const rt::RunResult r = run_with(plb, w, 1);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(plb.fractions()[1], plb.fractions()[0]);
}

TEST(PlbHec, SelectedSharesTrackOracle) {
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(4, true));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok);
  const auto oracle = baselines::oracle_static_weights(
      cluster, w.profile(), w.total_grains(), w.bytes_per_grain());
  for (std::size_t u = 0; u < oracle.size(); ++u)
    EXPECT_NEAR(plb.fractions()[u], oracle[u], 0.35 * oracle[u] + 0.01)
        << r.units[u].name;
}

TEST(PlbHec, RebalanceTriggersOnQosChange) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(sim::scenario(2));
  // Halve the GPU of machine A mid-run: durations diverge -> rebalance.
  cluster.add_speed_event(1, 0.0, 1.0);
  core::PlbHecScheduler probe_only;  // first run to estimate makespan
  rt::SimEngine engine(cluster, {});
  const rt::RunResult probe_run = engine.run(w, probe_only);
  ASSERT_TRUE(probe_run.ok);

  cluster.add_speed_event(1, probe_run.makespan * 0.5, 0.25);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  // The scheduler must have adapted: either a threshold rebalance fired or
  // a progressive refinement re-solved after the drop; in all cases the
  // selection ran more than once.
  EXPECT_GE(plb.stats().rebalances + plb.stats().refinements, 1u);
  EXPECT_GE(plb.stats().solves, 2u);
}

TEST(PlbHec, SurvivesUnitFailureAndResolves) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(sim::scenario(2));
  core::PlbHecScheduler probe_only;
  rt::SimEngine engine(cluster, {});
  const rt::RunResult probe_run = engine.run(w, probe_only);
  ASSERT_TRUE(probe_run.ok);

  cluster.fail_unit(3, probe_run.makespan * 0.5);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.unit_stats[3].failed);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
  // The failed unit's share was redistributed.
  EXPECT_DOUBLE_EQ(plb.fractions()[3], 0.0);
}

TEST(PlbHec, SingleUnitDegeneratesGracefully) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(
      std::vector<sim::MachineConfig>{sim::machine_a()});
  // Strip to one unit by failing the CPU immediately.
  cluster.fail_unit(0, 0.0);
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.unit_stats[1].grains, w.total_grains());
}

TEST(PlbHec, SolveTimesRecorded) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecScheduler plb;
  const rt::RunResult r = run_with(plb, w);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(plb.stats().solve_seconds.size(), plb.stats().solves);
  for (double s : plb.stats().solve_seconds) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 10.0);
  }
}

TEST(PlbHec, HonorsExplicitInitialBlock) {
  apps::SyntheticWorkload w(medium_config());
  core::PlbHecOptions opts;
  opts.initial_block = 13;
  core::PlbHecScheduler plb(opts);
  sim::SimCluster cluster(sim::scenario(1));
  rt::EngineOptions eopts;
  eopts.noise = sim::NoiseModel::none();
  rt::SimEngine engine(cluster, eopts);
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok);
  // The first probe block of every unit is exactly initial_block.
  std::vector<bool> seen(r.units.size(), false);
  for (const auto& seg : r.trace.segments()) {
    if (seg.kind != rt::SegmentKind::kExec) continue;
    if (!seen[seg.unit]) {
      EXPECT_EQ(seg.grains, 13u) << "unit " << seg.unit;
      seen[seg.unit] = true;
    }
  }
}

TEST(Greedy, FixedPieces) {
  apps::SyntheticWorkload w(medium_config());
  baselines::GreedyScheduler greedy(128);
  const rt::RunResult r = run_with(greedy, w);
  ASSERT_TRUE(r.ok);
  for (const auto& seg : r.trace.segments())
    if (seg.kind == rt::SegmentKind::kExec) EXPECT_LE(seg.grains, 128u);
}

TEST(Greedy, FasterUnitsTakeMorePieces) {
  apps::MatMulWorkload w(8192);
  baselines::GreedyScheduler greedy;
  const rt::RunResult r = run_with(greedy, w, 1);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.unit_stats[1].tasks, r.unit_stats[0].tasks);  // GPU > CPU
}

TEST(Hdss, ReachesCompletionPhase) {
  apps::SyntheticWorkload w(medium_config());
  baselines::HdssScheduler hdss;
  const rt::RunResult r = run_with(hdss, w);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(hdss.in_completion_phase());
}

TEST(Hdss, WeightsArePositiveAndNormalized) {
  apps::SyntheticWorkload w(medium_config());
  baselines::HdssScheduler hdss;
  const rt::RunResult r = run_with(hdss, w, 3);
  ASSERT_TRUE(r.ok);
  const auto wf = hdss.weight_fractions();
  double sum = 0.0;
  for (double v : wf) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Hdss, GpuWeightExceedsCpuOnComputeBoundWork) {
  apps::MatMulWorkload w(16384);
  baselines::HdssScheduler hdss;
  const rt::RunResult r = run_with(hdss, w, 1);
  ASSERT_TRUE(r.ok);
  const auto wf = hdss.weight_fractions();
  EXPECT_GT(wf[1], wf[0]);
}

TEST(Hdss, AdaptiveBlocksGrowGeometrically) {
  apps::SyntheticWorkload w(medium_config());
  baselines::HdssOptions opts;
  opts.initial_block = 10;
  opts.growth = 2.0;
  baselines::HdssScheduler hdss(opts);
  sim::SimCluster cluster(sim::scenario(1));
  rt::EngineOptions eopts;
  eopts.noise = sim::NoiseModel::none();
  rt::SimEngine engine(cluster, eopts);
  const rt::RunResult r = engine.run(w, hdss);
  ASSERT_TRUE(r.ok);
  // First tasks of unit 0: 10, 20, 40 ... until convergence.
  std::vector<std::size_t> sizes;
  for (const auto& seg : r.trace.segments())
    if (seg.kind == rt::SegmentKind::kExec && seg.unit == 0 &&
        sizes.size() < 3)
      sizes.push_back(seg.grains);
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 10u);
  EXPECT_EQ(sizes[1], 20u);
  EXPECT_EQ(sizes[2], 40u);
}

TEST(Hdss, HandlesUnitFailure) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(sim::scenario(2));
  cluster.fail_unit(2, 1e-4);
  rt::SimEngine engine(cluster, {});
  baselines::HdssScheduler hdss;
  const rt::RunResult r = engine.run(w, hdss);
  ASSERT_TRUE(r.ok) << r.error;
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
}

TEST(Acosta, SharesConvergeTowardSpeeds) {
  apps::MatMulWorkload w(16384);
  baselines::AcostaScheduler acosta;
  const rt::RunResult r = run_with(acosta, w, 1);
  ASSERT_TRUE(r.ok);
  const auto& shares = acosta.shares();
  EXPECT_GT(shares[1], shares[0]);  // GPU share above CPU share
  EXPECT_GE(acosta.iterations(), 2u);
}

TEST(Acosta, SharesStayNormalized) {
  apps::SyntheticWorkload w(medium_config());
  baselines::AcostaScheduler acosta;
  const rt::RunResult r = run_with(acosta, w, 3);
  ASSERT_TRUE(r.ok);
  const double sum = std::accumulate(acosta.shares().begin(),
                                     acosta.shares().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Acosta, IteratesTowardEquilibrium) {
  apps::MatMulWorkload w(8192);
  baselines::AcostaOptions opts;
  opts.threshold = 0.25;  // generous: convergence is asymptotic
  baselines::AcostaScheduler acosta(opts);
  const rt::RunResult r = run_with(acosta, w);
  ASSERT_TRUE(r.ok);
  // Multiple rebalancing iterations must have happened, and the shares
  // must have moved away from uniform toward the device speeds (the GPU
  // of machine A is far faster than its CPU on matmul rows).
  EXPECT_GE(acosta.iterations(), 3u);
  EXPECT_GT(acosta.shares()[1], acosta.shares()[0]);
}

TEST(Acosta, FailureRedistributesShares) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(sim::scenario(2));
  cluster.fail_unit(0, 1e-4);
  rt::SimEngine engine(cluster, {});
  baselines::AcostaScheduler acosta;
  const rt::RunResult r = engine.run(w, acosta);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(acosta.shares()[0], 0.0);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
}

TEST(StaticProfile, OracleWeightsBalanceTrueModels) {
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(3));
  const auto weights = baselines::oracle_static_weights(
      cluster, w.profile(), w.total_grains(), w.bytes_per_grain());
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // All units process their weighted share in nearly equal time.
  std::vector<double> times;
  for (std::size_t u = 0; u < cluster.size(); ++u) {
    const double grains =
        weights[u] * static_cast<double>(w.total_grains());
    const auto& su = cluster.unit(u);
    times.push_back(su.path.transfer_seconds(grains * w.bytes_per_grain()) +
                    su.device->execution_seconds(w.profile(), grains));
  }
  const double t0 = times[0];
  for (double t : times) EXPECT_NEAR(t, t0, 0.02 * t0);
}

TEST(StaticProfile, RunsToCompletion) {
  apps::SyntheticWorkload w(medium_config());
  sim::SimCluster cluster(sim::scenario(2));
  const auto weights = baselines::oracle_static_weights(
      cluster, w.profile(), w.total_grains(), w.bytes_per_grain());
  baselines::StaticProfileScheduler sched(weights);
  rt::SimEngine engine(cluster, {});
  const rt::RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(StaticProfile, OracleBeatsOrMatchesGreedy) {
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(4, true));
  rt::SimEngine engine(cluster, {});
  const auto weights = baselines::oracle_static_weights(
      cluster, w.profile(), w.total_grains(), w.bytes_per_grain());
  baselines::StaticProfileScheduler oracle(weights);
  baselines::GreedyScheduler greedy;
  const rt::RunResult ro = engine.run(w, oracle);
  const rt::RunResult rg = engine.run(w, greedy);
  ASSERT_TRUE(ro.ok && rg.ok);
  EXPECT_LT(ro.makespan, 1.05 * rg.makespan);
}

}  // namespace
}  // namespace plbhec
