// Tests for the paper applications, the synthetic workload and the
// dispatched kernel families: Black-Scholes closed-form values, put-call
// parity, Monte Carlo convergence to the closed form; blocked-GEMM matmul
// against a naive reference; GRN conditional-entropy properties and
// kernel results; SpMV/stencil/n-body reference results, CSR degree skew,
// remote result round-trips; cost-profile sanity for the simulated
// devices.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/nbody.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/linalg/matrix.hpp"

namespace plbhec::apps {
namespace {

TEST(BlackScholes, KnownReferenceValue) {
  // Classic textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
  OptionQuote q;
  const OptionPrice p = black_scholes(q);
  EXPECT_NEAR(p.call, 10.4506, 1e-3);
  EXPECT_NEAR(p.put, 5.5735, 1e-3);
}

TEST(BlackScholes, DeepInTheMoneyCall) {
  OptionQuote q;
  q.spot = 200.0;
  q.strike = 100.0;
  const OptionPrice p = black_scholes(q);
  // Lower bound: S - K e^{-rT}.
  EXPECT_GT(p.call, 200.0 - 100.0 * std::exp(-0.05));
  EXPECT_LT(p.put, 0.01);
}

TEST(BlackScholes, PutCallParityHoldsAcrossPortfolio) {
  BlackScholesWorkload w(500);
  w.execute_cpu(0, 500);
  for (std::size_t i = 0; i < 500; ++i) {
    const auto& q = w.quotes()[i];
    const auto& p = w.prices()[i];
    const double lhs = p.call - p.put;
    const double rhs =
        q.spot - q.strike * std::exp(-q.rate * q.expiry_years);
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::fabs(rhs))) << i;
  }
}

TEST(BlackScholes, MonotoneInSpot) {
  OptionQuote lo, hi;
  lo.spot = 90.0;
  hi.spot = 110.0;
  EXPECT_LT(black_scholes(lo).call, black_scholes(hi).call);
  EXPECT_GT(black_scholes(lo).put, black_scholes(hi).put);
}

TEST(BlackScholes, VolatilityIncreasesBothLegs) {
  OptionQuote lo, hi;
  lo.volatility = 0.1;
  hi.volatility = 0.5;
  EXPECT_LT(black_scholes(lo).call, black_scholes(hi).call);
  EXPECT_LT(black_scholes(lo).put, black_scholes(hi).put);
}

TEST(BlackScholes, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
}

TEST(BlackScholes, MonteCarloConvergesToClosedForm) {
  BlackScholesWorkload::Config cfg;
  cfg.options = 1;
  cfg.mc_paths = 20000;
  cfg.mc_steps = 16;
  BlackScholesWorkload w(cfg);
  OptionQuote q;  // textbook case
  const OptionPrice exact = black_scholes(q);
  const OptionPrice mc = w.monte_carlo_price(q, 42);
  EXPECT_NEAR(mc.call, exact.call, 0.05 * exact.call);
  EXPECT_NEAR(mc.put, exact.put, 0.08 * exact.put);
}

TEST(BlackScholes, McPutCallParityInExpectation) {
  BlackScholesWorkload::Config cfg;
  cfg.options = 1;
  cfg.mc_paths = 20000;
  cfg.mc_steps = 8;
  BlackScholesWorkload w(cfg);
  OptionQuote q;
  const OptionPrice mc = w.monte_carlo_price(q, 7);
  const double rhs = q.spot - q.strike * std::exp(-q.rate * q.expiry_years);
  EXPECT_NEAR(mc.call - mc.put, rhs, 0.05 * std::fabs(rhs) + 0.2);
}

TEST(BlackScholes, ExecuteRangeOnlyTouchesRange) {
  BlackScholesWorkload w(100);
  w.execute_cpu(10, 20);
  EXPECT_EQ(w.prices()[5].call, 0.0);
  EXPECT_NE(w.prices()[15].call, 0.0);
  EXPECT_EQ(w.prices()[50].call, 0.0);
}

TEST(BlackScholes, ProfileScalesWithMcConfig) {
  BlackScholesWorkload closed(1000);
  BlackScholesWorkload mc(BlackScholesWorkload::paper_instance(1000));
  EXPECT_GT(mc.profile().flops_per_grain,
            50.0 * closed.profile().flops_per_grain);
  EXPECT_EQ(closed.total_grains(), 1000u);
}

TEST(MatMul, RealKernelMatchesNaiveReference) {
  const std::size_t n = 48;
  MatMulWorkload w(n, /*materialize=*/true);
  w.execute_cpu(0, n);
  // Naive reference.
  for (std::size_t i = 0; i < n; i += 7) {
    for (std::size_t j = 0; j < n; j += 5) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        acc += w.a()[i * n + k] * w.b()[k * n + j];
      EXPECT_NEAR(w.result()[i * n + j], acc, 1e-10) << i << "," << j;
    }
  }
}

TEST(MatMul, PartialRangesCompose) {
  const std::size_t n = 32;
  MatMulWorkload whole(n, true);
  MatMulWorkload split(n, true);
  whole.execute_cpu(0, n);
  split.execute_cpu(0, n / 2);
  split.execute_cpu(n / 2, n);
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_DOUBLE_EQ(whole.result()[i], split.result()[i]);
}

TEST(MatMul, ProfileComplexityIsQuadraticPerGrain) {
  MatMulWorkload small(1024);
  MatMulWorkload big(2048);
  EXPECT_NEAR(big.profile().flops_per_grain /
                  small.profile().flops_per_grain,
              4.0, 1e-9);
  EXPECT_EQ(big.total_grains(), 2048u);
  EXPECT_DOUBLE_EQ(big.bytes_per_grain(), 2048.0 * sizeof(double));
}

TEST(MatMul, SimulationOnlyWithoutMaterialization) {
  MatMulWorkload w(65536);
  EXPECT_FALSE(w.supports_real_execution());
  EXPECT_EQ(w.total_grains(), 65536u);
}

TEST(Grn, ConditionalEntropyBounds) {
  GrnWorkload w({.genes = 50, .samples = 128, .pair_window = 8,
                 .materialize = true});
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = 10; b < 20; ++b) {
      const double h = w.conditional_entropy(a, b);
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0 + 1e-12);  // binary target
    }
}

TEST(Grn, PlantedPairHasLowestEntropy) {
  // The target is (gene0 XOR gene1) with 10% noise, so H(target|g0,g1)
  // must be far below the entropy of random pairs.
  GrnWorkload w({.genes = 200, .samples = 512, .pair_window = 4,
                 .materialize = true});
  const double planted = w.conditional_entropy(0, 1);
  double random_sum = 0.0;
  int count = 0;
  for (std::size_t a = 10; a < 20; ++a)
    for (std::size_t b = 30; b < 35; ++b) {
      random_sum += w.conditional_entropy(a, b);
      ++count;
    }
  EXPECT_LT(planted, 0.7 * random_sum / count);
}

TEST(Grn, EntropySymmetricInPredictors) {
  GrnWorkload w({.genes = 30, .samples = 256, .pair_window = 4,
                 .materialize = true});
  EXPECT_DOUBLE_EQ(w.conditional_entropy(3, 7), w.conditional_entropy(7, 3));
}

TEST(Grn, KernelFindsBestPartnerInWindow) {
  GrnWorkload w({.genes = 64, .samples = 256, .pair_window = 16,
                 .materialize = true});
  w.execute_cpu(0, 64);
  for (std::size_t g = 0; g < 64; ++g) {
    const std::size_t best = w.best_partner()[g];
    const double best_score = w.scores()[g];
    // Verify the reported partner really is the argmin over the window.
    for (std::size_t k = 1; k <= 16; ++k) {
      const std::size_t partner = (g + k) % 64;
      if (partner == g) continue;
      EXPECT_GE(w.conditional_entropy(g, partner),
                best_score - 1e-6)
          << "gene " << g;
    }
    EXPECT_NEAR(w.conditional_entropy(g, best), best_score, 1e-6);
  }
}

TEST(Grn, PaperInstanceScales) {
  const auto cfg = GrnWorkload::paper_instance(60'000);
  EXPECT_EQ(cfg.genes, 60'000u);
  EXPECT_EQ(cfg.pair_window, 30'000u);
  EXPECT_FALSE(cfg.materialize);
  GrnWorkload w(cfg);
  EXPECT_GT(w.profile().flops_per_grain, 1e6);
}

TEST(Grn, ProfileScalesWithWindow) {
  GrnWorkload narrow({.genes = 100, .samples = 64, .pair_window = 10});
  GrnWorkload wide({.genes = 100, .samples = 64, .pair_window = 100});
  EXPECT_NEAR(wide.profile().flops_per_grain /
                  narrow.profile().flops_per_grain,
              10.0, 0.2);
}

TEST(Synthetic, ChecksumCountsGrains) {
  SyntheticWorkload::Config cfg;
  cfg.grains = 100;
  cfg.spin_iters_per_grain = 10;
  SyntheticWorkload w(cfg);
  w.execute_cpu(0, 50);
  w.execute_cpu(50, 100);
  EXPECT_EQ(w.executed_grains(), 100u);
  EXPECT_GT(w.checksum(), 0.0);
}

TEST(Synthetic, ProfilePassthrough) {
  SyntheticWorkload::Config cfg;
  cfg.flops_per_grain = 123.0;
  cfg.gpu_efficiency = 0.77;
  SyntheticWorkload w(cfg);
  EXPECT_DOUBLE_EQ(w.profile().flops_per_grain, 123.0);
  EXPECT_DOUBLE_EQ(w.profile().gpu_efficiency, 0.77);
  EXPECT_TRUE(w.supports_real_execution());
}

// ---- Dispatched kernel families (spmv / stencil / nbody) -------------------

TEST(Spmv, KernelMatchesNaiveReference) {
  SpmvWorkload w(SpmvWorkload::Config{600, 20, true, 123});
  w.execute_cpu(0, w.total_grains());
  for (std::size_t i = 0; i < w.total_grains(); ++i) {
    double expect = 0.0;
    for (std::uint32_t j = w.row_ptr()[i]; j < w.row_ptr()[i + 1]; ++j)
      expect += w.vals()[j] * w.x()[w.cols()[j]];
    // Sequential reference vs the kernel's 4-lane tree: rounding only.
    EXPECT_NEAR(w.y()[i], expect, 1e-12 * (1.0 + std::abs(expect))) << i;
  }
}

TEST(Spmv, RowDegreesAreSkewedButBounded) {
  const SpmvWorkload w(SpmvWorkload::Config{4000, 32, true, 1});
  ASSERT_EQ(w.row_ptr().size(), 4001u);
  std::size_t max_deg = 0;
  for (std::size_t i = 0; i < 4000; ++i) {
    ASSERT_LE(w.row_ptr()[i], w.row_ptr()[i + 1]);
    max_deg = std::max<std::size_t>(max_deg,
                                    w.row_ptr()[i + 1] - w.row_ptr()[i]);
  }
  // Hubs exist (non-hub degrees cap at 2*mean - 1, so anything above
  // that is a x6 hub row) and stay under the generator's hard ceiling.
  EXPECT_GT(max_deg, 2u * 32u);
  EXPECT_LE(max_deg, 6u * (2u * 32u - 1u));
  for (const std::uint32_t c : w.cols()) EXPECT_LT(c, 4000u);
}

TEST(Spmv, PartialRangesCompose) {
  SpmvWorkload whole(SpmvWorkload::Config{500, 16, true, 77});
  whole.execute_cpu(0, 500);
  SpmvWorkload parts(SpmvWorkload::Config{500, 16, true, 77});
  parts.execute_cpu(300, 500);
  parts.execute_cpu(0, 300);
  EXPECT_EQ(whole.y(), parts.y());
}

TEST(Stencil, MatchesDirectExpression) {
  StencilWorkload w(StencilWorkload::Config{37, 21, true, 5});
  w.execute_cpu(0, w.total_grains());
  const std::size_t stride = 37 + 2;
  const auto& in = w.input();
  for (std::size_t i = 1; i <= 21; ++i) {
    for (std::size_t j = 1; j <= 37; ++j) {
      const std::size_t c = i * stride + j;
      const double cross = (in[c - 1] + in[c + 1]) +
                           (in[c - stride] + in[c + stride]);
      // Same expression tree as the kernel: exact equality.
      EXPECT_EQ(w.output()[c],
                StencilWorkload::kC0 * in[c] + StencilWorkload::kC1 * cross);
    }
  }
}

TEST(Stencil, ConstantFieldIsAFixedPoint) {
  // c0 + 4*c1 = 1: a uniform field must map to itself exactly.
  ASSERT_DOUBLE_EQ(StencilWorkload::kC0 + 4.0 * StencilWorkload::kC1, 1.0);
}

TEST(Nbody, MatchesNaiveReferenceAndConservesMomentum) {
  NbodyWorkload w(NbodyWorkload::Config{200, true, 42});
  w.execute_cpu(0, w.total_grains());
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    // Self-interaction is included branch-free but contributes zero
    // direction; total force sums to ~0 by Newton's third law.
    fx += w.mass()[i] * w.ax()[i];
    fy += w.mass()[i] * w.ay()[i];
    fz += w.mass()[i] * w.az()[i];
    EXPECT_TRUE(std::isfinite(w.ax()[i]) && std::isfinite(w.ay()[i]) &&
                std::isfinite(w.az()[i]))
        << i;
  }
  EXPECT_NEAR(fx, 0.0, 1e-9);
  EXPECT_NEAR(fy, 0.0, 1e-9);
  EXPECT_NEAR(fz, 0.0, 1e-9);
}

TEST(NewFamilies, ResultRoundTripPerFamily) {
  const auto round_trip = [](auto&& computed, auto&& blank,
                             const auto& fetch) {
    computed.execute_cpu(0, computed.total_grains());
    const std::size_t begin = 3, end = computed.total_grains() - 2;
    std::vector<std::uint8_t> buf(computed.result_bytes(begin, end));
    computed.write_results(begin, end, buf.data());
    blank.read_results(begin, end, buf.data());
    const auto a = fetch(computed), b = fetch(blank);
    for (std::size_t g = begin; g < end; ++g) EXPECT_EQ(a[g], b[g]) << g;
  };
  const SpmvWorkload::Config sc{300, 12, true, 8};
  round_trip(SpmvWorkload(sc), SpmvWorkload(sc),
             [](const SpmvWorkload& w) { return w.y(); });
  const NbodyWorkload::Config nc{120, true, 8};
  round_trip(NbodyWorkload(nc), NbodyWorkload(nc),
             [](const NbodyWorkload& w) { return w.ax(); });
}

TEST(NewFamilies, ProfilesSpanTheIntensitySpectrum) {
  const SpmvWorkload spmv(SpmvWorkload::paper_instance(100'000));
  const StencilWorkload stencil(StencilWorkload::paper_instance(100'000));
  const NbodyWorkload nbody(NbodyWorkload::paper_instance(100'000));
  const auto intensity = [](const rt::Workload& w) {
    const sim::WorkloadProfile p = w.profile();
    return p.flops_per_grain / p.device_bytes_per_grain;
  };
  // nbody (compute-bound) >> stencil/spmv (memory-bound) — the diversity
  // the per-family profile fits and the sim cost hook rely on.
  EXPECT_GT(intensity(nbody), 100.0 * intensity(stencil));
  EXPECT_GT(intensity(nbody), 100.0 * intensity(spmv));
  EXPECT_FALSE(spmv.supports_real_execution());
  EXPECT_TRUE(spmv.remote_spec().empty());  // sim-only: nothing to rebuild
}

}  // namespace
}  // namespace plbhec::apps
