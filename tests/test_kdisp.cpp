// Tests for the runtime ISA kernel-dispatch registry and the contract the
// dispatched workload families make with it: the table resolves the
// highest registered variant at or below the ceiling and degrades to
// scalar instead of failing on unknown/too-new ISAs or narrow widths; the
// forced-scalar and best-ISA variants of every reduction family are
// bit-identical; the dispatch decision is observable through counters but
// never leaks into workload results.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "plbhec/apps/nbody.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/kdisp/isa.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"
#include "plbhec/obs/counters.hpp"

namespace plbhec::kdisp {
namespace {

// RAII ceiling pin: every test that forces an ISA restores the process
// default on exit so test order never matters.
class ScopedIsa {
 public:
  explicit ScopedIsa(IsaClass isa)
      : previous_(set_effective_isa_for_testing(isa)) {}
  ~ScopedIsa() { set_effective_isa_for_testing(previous_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  IsaClass previous_;
};

TEST(KdispTable, WidthClassification) {
  EXPECT_EQ(classify_width(0), WidthClass::kNarrow);
  EXPECT_EQ(classify_width(kNarrowWidthLimit - 1), WidthClass::kNarrow);
  EXPECT_EQ(classify_width(kNarrowWidthLimit), WidthClass::kWide);
  EXPECT_EQ(classify_width(1 << 20), WidthClass::kWide);
}

TEST(KdispTable, IsaNamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(parse_isa("scalar"), IsaClass::kScalar);
  EXPECT_EQ(parse_isa("avx2"), IsaClass::kAvx2);
  EXPECT_EQ(parse_isa("avx512"), IsaClass::kAvx512);
  EXPECT_EQ(parse_isa("best"), IsaClass::kAvx512);
  EXPECT_EQ(parse_isa("sse9"), std::nullopt);
  EXPECT_EQ(parse_isa(""), std::nullopt);
  for (const IsaClass isa :
       {IsaClass::kScalar, IsaClass::kAvx2, IsaClass::kAvx512})
    EXPECT_EQ(parse_isa(to_string(isa)), isa);
}

TEST(KdispTable, EffectiveIsaNeverExceedsHost) {
  EXPECT_LE(effective_isa(), host_isa());
  const ScopedIsa pin(IsaClass::kAvx512);  // clamped, not trusted
  EXPECT_LE(effective_isa(), host_isa());
}

TEST(KdispTable, EveryFamilyHasAScalarWideVariant) {
  KernelRegistry& reg = KernelRegistry::instance();
  for (const char* kernel :
       {kSpmvKernel, kStencilKernel, kNbodyKernel, kGemmMicroKernel}) {
    const auto sel = reg.lookup(kernel, WidthClass::kWide, IsaClass::kScalar);
    ASSERT_TRUE(sel.has_value()) << kernel;
    EXPECT_EQ(sel->isa, IsaClass::kScalar) << kernel;
    EXPECT_NE(sel->fn, nullptr) << kernel;
    EXPECT_FALSE(sel->variant_name.empty()) << kernel;
  }
}

TEST(KdispTable, DownwardScanNeverExceedsTheCeiling) {
  KernelRegistry& reg = KernelRegistry::instance();
  for (const char* kernel :
       {kSpmvKernel, kStencilKernel, kNbodyKernel, kGemmMicroKernel}) {
    for (const IsaClass ceiling :
         {IsaClass::kScalar, IsaClass::kAvx2, IsaClass::kAvx512}) {
      const auto sel = reg.lookup(kernel, WidthClass::kWide, ceiling);
      ASSERT_TRUE(sel.has_value()) << kernel;
      EXPECT_LE(sel->isa, ceiling) << kernel;
    }
  }
}

TEST(KdispTable, TooNewCeilingDegradesToTheBestRegisteredVariant) {
  KernelRegistry& reg = KernelRegistry::instance();
  // nbody registers no AVX-512 variant: an AVX-512 ceiling must resolve
  // to the AVX2 entry, not fail.
  const auto nbody =
      reg.lookup(kNbodyKernel, WidthClass::kWide, IsaClass::kAvx512);
  ASSERT_TRUE(nbody.has_value());
  EXPECT_EQ(nbody->isa, IsaClass::kAvx2);
  // A ceiling one past the ladder's top (an "unknown future ISA") behaves
  // like the top: the scan only ever walks downward.
  const auto future = reg.lookup(kStencilKernel, WidthClass::kWide,
                                 static_cast<IsaClass>(kIsaClassCount));
  ASSERT_TRUE(future.has_value());
  EXPECT_LE(future->isa, IsaClass::kAvx512);
}

TEST(KdispTable, NarrowWidthFallsBackToScalar) {
  KernelRegistry& reg = KernelRegistry::instance();
  // Vector variants register kWide only; narrow instances take the
  // portable kernel no matter how capable the host is.
  for (const char* kernel : {kSpmvKernel, kStencilKernel, kNbodyKernel}) {
    const auto sel =
        reg.lookup(kernel, WidthClass::kNarrow, IsaClass::kAvx512);
    ASSERT_TRUE(sel.has_value()) << kernel;
    EXPECT_EQ(sel->isa, IsaClass::kScalar) << kernel;
  }
}

TEST(KdispTable, UnknownKernelIsNulloptNotAbort) {
  EXPECT_FALSE(KernelRegistry::instance()
                   .lookup("no-such-kernel", WidthClass::kWide)
                   .has_value());
}

TEST(KdispTable, VariantRosterIsComplete) {
  // 8 scalar (4 families x 2 widths) + 4 AVX2 wide + 1 AVX-512 stencil.
  // Registration is unconditional — variants are always compiled in and
  // gated at lookup time — so the count is host-independent.
  EXPECT_GE(KernelRegistry::instance().variant_count(), 13u);
}

TEST(KdispTable, LookupsAreAuditedAndPublished) {
  KernelRegistry& reg = KernelRegistry::instance();
  const auto before = reg.resolved();
  std::uint64_t lookups_before = 0;
  for (const DispatchRecord& r : before)
    if (r.kernel == kSpmvKernel && r.width == WidthClass::kWide)
      lookups_before = r.lookups;
  ASSERT_TRUE(reg.lookup(kSpmvKernel, WidthClass::kWide).has_value());

  bool found = false;
  for (const DispatchRecord& r : reg.resolved()) {
    if (r.kernel != kSpmvKernel || r.width != WidthClass::kWide) continue;
    found = true;
    EXPECT_GT(r.lookups, lookups_before);
    EXPECT_FALSE(r.variant_name.empty());
  }
  EXPECT_TRUE(found);

  obs::CounterRegistry counters;
  reg.publish_counters(counters);
  EXPECT_EQ(counters.value("kdisp.variants"), reg.variant_count());
  EXPECT_EQ(counters.value("kdisp.host_isa"),
            static_cast<std::uint64_t>(host_isa()));
  EXPECT_EQ(counters.value("kdisp.effective_isa"),
            static_cast<std::uint64_t>(effective_isa()));
  EXPECT_GE(counters.value("kdisp.spmv.wide.lookups"), 1u);
}

TEST(KdispTable, ForcedCeilingChangesSubsequentLookups) {
  KernelRegistry& reg = KernelRegistry::instance();
  const ScopedIsa pin(IsaClass::kScalar);
  const auto sel = reg.lookup(kStencilKernel, WidthClass::kWide);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->isa, IsaClass::kScalar);
}

// ---- Bit-identity across variants -----------------------------------------
//
// The contract every family except gemm signs: forcing the portable
// kernel must reproduce the best-ISA result byte for byte, because
// daemons of different ISAs ship results the identity gates memcmp.

template <typename Workload, typename Run, typename Fetch>
void expect_variants_bit_identical(const Run& run, const Fetch& fetch) {
  std::optional<std::vector<double>> scalar;
  {
    const ScopedIsa pin(IsaClass::kScalar);
    Workload w = run();
    scalar = fetch(w);
  }
  // Default ceiling = the best this host executes (scalar again on a
  // scalar-only host, where the comparison is trivially green).
  Workload w = run();
  const std::vector<double> best = fetch(w);
  ASSERT_EQ(scalar->size(), best.size());
  EXPECT_EQ(0, std::memcmp(scalar->data(), best.data(),
                           best.size() * sizeof(double)));
}

TEST(KdispIdentity, SpmvForcedScalarMatchesBestIsaBitwise) {
  expect_variants_bit_identical<apps::SpmvWorkload>(
      [] {
        apps::SpmvWorkload w(
            apps::SpmvWorkload::Config{2000, 48, true, 0x59a125});
        w.execute_cpu(0, w.total_grains());
        return w;
      },
      [](const apps::SpmvWorkload& w) { return w.y(); });
}

TEST(KdispIdentity, StencilForcedScalarMatchesBestIsaBitwise) {
  expect_variants_bit_identical<apps::StencilWorkload>(
      [] {
        apps::StencilWorkload w(
            apps::StencilWorkload::Config{259, 160, true, 0x57e4c11});
        w.execute_cpu(0, w.total_grains());
        return w;
      },
      [](const apps::StencilWorkload& w) { return w.output(); });
}

TEST(KdispIdentity, NbodyForcedScalarMatchesBestIsaBitwise) {
  expect_variants_bit_identical<apps::NbodyWorkload>(
      [] {
        apps::NbodyWorkload w(apps::NbodyWorkload::Config{610, true, 7});
        w.execute_cpu(0, w.total_grains());
        return w;
      },
      [](const apps::NbodyWorkload& w) {
        std::vector<double> all = w.ax();
        all.insert(all.end(), w.ay().begin(), w.ay().end());
        all.insert(all.end(), w.az().begin(), w.az().end());
        return all;
      });
}

TEST(KdispIdentity, SpmvNarrowAndWideScalarVariantsAgree) {
  // Same data through both width-class kernels (nnz 8 classifies narrow;
  // the wide scalar variant handles any width): one reduction tree, one
  // answer.
  apps::SpmvWorkload narrow(apps::SpmvWorkload::Config{800, 8, true, 42});
  narrow.execute_cpu(0, narrow.total_grains());

  const ScopedIsa pin(IsaClass::kScalar);
  auto* const wide = KernelRegistry::instance().select<SpmvRowsFn>(
      kSpmvKernel, WidthClass::kWide);
  std::vector<double> y(narrow.total_grains(), 0.0);
  wide(narrow.row_ptr().data(), narrow.cols().data(), narrow.vals().data(),
       narrow.x().data(), y.data(), 0, narrow.total_grains());
  EXPECT_EQ(0, std::memcmp(y.data(), narrow.y().data(),
                           y.size() * sizeof(double)));
}

}  // namespace
}  // namespace plbhec::kdisp
