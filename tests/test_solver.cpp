// Tests for the optimization layer: the interior-point NLP solver on
// problems with known solutions (QPs, bound-constrained, equality-
// constrained), KKT quality, the analytic equal-time solver, the
// block-size selection front end and grain rounding. Includes the
// cross-check property: on well-behaved curve sets the interior-point
// selection and the analytic solver must agree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "plbhec/common/rng.hpp"
#include "plbhec/solver/block_selection.hpp"
#include "plbhec/solver/equal_time.hpp"
#include "plbhec/solver/interior_point.hpp"

namespace plbhec::solver {
namespace {

/// min (x0-1)^2 + (x1-2.5)^2, bounds x >= 0 — unconstrained optimum feasible.
class SimpleQp final : public NlpProblem {
 public:
  std::size_t num_vars() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  double objective(std::span<const double> x) const override {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 2.5) * (x[1] - 2.5);
  }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    g[0] = 2.0 * (x[0] - 1.0);
    g[1] = 2.0 * (x[1] - 2.5);
  }
  void constraints(std::span<const double>, std::span<double>) const override {}
  void jacobian(std::span<const double>, linalg::Matrix&) const override {}
  void lagrangian_hessian(std::span<const double>, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    h(0, 0) = 2.0 * obj;
    h(1, 1) = 2.0 * obj;
    h(0, 1) = h(1, 0) = 0.0;
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    lo[0] = lo[1] = 0.0;
    hi[0] = hi[1] = kInfinity;
  }
};

TEST(InteriorPoint, UnconstrainedQpInterior) {
  SimpleQp qp;
  std::vector<double> x0{0.5, 0.5};
  const IpResult r = solve_interior_point(qp, x0);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 2.5, 1e-6);
  EXPECT_LT(r.kkt_error, 1e-7);
}

/// min (x0+1)^2 + x1^2 with x >= 0: optimum at the bound x0 = 0.
class BoundActiveQp final : public NlpProblem {
 public:
  std::size_t num_vars() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  double objective(std::span<const double> x) const override {
    return (x[0] + 1.0) * (x[0] + 1.0) + x[1] * x[1];
  }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    g[0] = 2.0 * (x[0] + 1.0);
    g[1] = 2.0 * x[1];
  }
  void constraints(std::span<const double>, std::span<double>) const override {}
  void jacobian(std::span<const double>, linalg::Matrix&) const override {}
  void lagrangian_hessian(std::span<const double>, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    h(0, 0) = h(1, 1) = 2.0 * obj;
    h(0, 1) = h(1, 0) = 0.0;
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    lo[0] = lo[1] = 0.0;
    hi[0] = hi[1] = kInfinity;
  }
};

TEST(InteriorPoint, ActiveBoundFound) {
  BoundActiveQp qp;
  std::vector<double> x0{1.0, 1.0};
  const IpResult r = solve_interior_point(qp, x0);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  // Interior-point iterates approach an active bound only to within the
  // final barrier parameter's complementarity slack.
  EXPECT_NEAR(r.x[0], 0.0, 5e-4);
  EXPECT_NEAR(r.x[1], 0.0, 5e-4);
}

/// min x0^2 + x1^2 s.t. x0 + x1 = 1: optimum (0.5, 0.5), lambda = -1.
class EqualityQp final : public NlpProblem {
 public:
  std::size_t num_vars() const override { return 2; }
  std::size_t num_constraints() const override { return 1; }
  double objective(std::span<const double> x) const override {
    return x[0] * x[0] + x[1] * x[1];
  }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    g[0] = 2.0 * x[0];
    g[1] = 2.0 * x[1];
  }
  void constraints(std::span<const double> x,
                   std::span<double> c) const override {
    c[0] = x[0] + x[1] - 1.0;
  }
  void jacobian(std::span<const double>, linalg::Matrix& j) const override {
    j(0, 0) = j(0, 1) = 1.0;
  }
  void lagrangian_hessian(std::span<const double>, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    h(0, 0) = h(1, 1) = 2.0 * obj;
    h(0, 1) = h(1, 0) = 0.0;
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    lo[0] = lo[1] = -kInfinity;
    hi[0] = hi[1] = kInfinity;
  }
};

TEST(InteriorPoint, EqualityConstrainedQp) {
  EqualityQp qp;
  std::vector<double> x0{2.0, -1.0};
  const IpResult r = solve_interior_point(qp, x0);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
  EXPECT_NEAR(r.x[1], 0.5, 1e-6);
  EXPECT_NEAR(r.objective, 0.5, 1e-6);
  EXPECT_LT(r.constraint_violation, 1e-8);
  ASSERT_EQ(r.lambda.size(), 1u);
  EXPECT_NEAR(r.lambda[0], -1.0, 1e-5);
}

/// Rosenbrock in a box, constrained to the unit disk boundary is too mean;
/// use plain bounded Rosenbrock: min (1-x)^2 + 100(y-x^2)^2, 0<=x,y<=2.
class Rosenbrock final : public NlpProblem {
 public:
  std::size_t num_vars() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  double objective(std::span<const double> v) const override {
    const double x = v[0], y = v[1];
    return (1 - x) * (1 - x) + 100.0 * (y - x * x) * (y - x * x);
  }
  void gradient(std::span<const double> v, std::span<double> g) const override {
    const double x = v[0], y = v[1];
    g[0] = -2.0 * (1 - x) - 400.0 * x * (y - x * x);
    g[1] = 200.0 * (y - x * x);
  }
  void constraints(std::span<const double>, std::span<double>) const override {}
  void jacobian(std::span<const double>, linalg::Matrix&) const override {}
  void lagrangian_hessian(std::span<const double> v, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    const double x = v[0], y = v[1];
    h(0, 0) = obj * (2.0 - 400.0 * (y - 3.0 * x * x));
    h(0, 1) = h(1, 0) = obj * (-400.0 * x);
    h(1, 1) = obj * 200.0;
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    lo[0] = lo[1] = 0.0;
    hi[0] = hi[1] = 2.0;
  }
};

TEST(InteriorPoint, RosenbrockConverges) {
  Rosenbrock prob;
  std::vector<double> x0{0.2, 1.8};
  IpOptions opts;
  opts.max_iterations = 500;
  const IpResult r = solve_interior_point(prob, x0, opts);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(InteriorPoint, InvalidProblemRejected) {
  SimpleQp qp;
  std::vector<double> wrong_size{1.0};
  const IpResult r = solve_interior_point(qp, wrong_size);
  EXPECT_EQ(r.status, IpStatus::kInvalidProblem);
}

TEST(InteriorPoint, StatusStrings) {
  EXPECT_EQ(to_string(IpStatus::kSolved), "solved");
  EXPECT_FALSE(to_string(IpStatus::kLineSearchFailure).empty());
  EXPECT_FALSE(to_string(IpStatus::kSingularSystem).empty());
  EXPECT_FALSE(to_string(IpStatus::kMaxIterations).empty());
}

// ---- Equal-time analytic solver ------------------------------------------

fit::PerfModel affine_model(double intercept, double slope,
                            double tr_slope = 0.0, double tr_lat = 0.0) {
  fit::PerfModel m;
  m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX};
  m.exec.coefficients = {intercept, slope};
  m.transfer.slope = tr_slope;
  m.transfer.latency = tr_lat;
  return m;
}

TEST(EqualTime, TwoIdenticalUnitsSplitEvenly) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 1.0)};
  const EqualTimeResult r = solve_equal_time(models);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.fractions[0], 0.5, 1e-6);
  EXPECT_NEAR(r.fractions[1], 0.5, 1e-6);
}

TEST(EqualTime, SpeedRatioRespected) {
  // Unit 1 is 3x slower: shares should be 0.75 / 0.25.
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 3.0)};
  const EqualTimeResult r = solve_equal_time(models);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.fractions[0], 0.75, 1e-3);
  EXPECT_NEAR(r.fractions[1], 0.25, 1e-3);
}

TEST(EqualTime, SumsToTarget) {
  std::vector<fit::PerfModel> models{affine_model(0.1, 2.0),
                                     affine_model(0.05, 1.0),
                                     affine_model(0.2, 4.0)};
  EqualTimeOptions opts;
  opts.target = 0.25;
  const EqualTimeResult r = solve_equal_time(models, opts);
  ASSERT_TRUE(r.ok);
  const double sum =
      std::accumulate(r.fractions.begin(), r.fractions.end(), 0.0);
  EXPECT_NEAR(sum, 0.25, 1e-9);
}

TEST(EqualTime, EqualizesTimes) {
  std::vector<fit::PerfModel> models{affine_model(0.02, 2.0, 0.5, 0.01),
                                     affine_model(0.01, 5.0, 0.5, 0.02),
                                     affine_model(0.0, 9.0, 0.5, 0.0)};
  const EqualTimeResult r = solve_equal_time(models);
  ASSERT_TRUE(r.ok);
  const double t0 = models[0].total_time(r.fractions[0]);
  for (std::size_t g = 1; g < models.size(); ++g)
    EXPECT_NEAR(models[g].total_time(r.fractions[g]), t0, 0.02 * t0);
}

TEST(EqualTime, SingleUnitGetsTarget) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0)};
  const EqualTimeResult r = solve_equal_time(models);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.fractions[0], 1.0);
}

TEST(EqualTime, EmptyFails) {
  const EqualTimeResult r = solve_equal_time({});
  EXPECT_FALSE(r.ok);
}

TEST(EqualTime, FlatCurvesFallBackProportionally) {
  // Two constant (uninformative) curves: solver must still return a split.
  fit::PerfModel flat_fast;
  flat_fast.exec.terms = {fit::BasisFn::kOne};
  flat_fast.exec.coefficients = {1.0};
  fit::PerfModel flat_slow = flat_fast;
  flat_slow.exec.coefficients = {4.0};
  const EqualTimeResult r = solve_equal_time(
      std::vector<fit::PerfModel>{flat_fast, flat_slow});
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.fractions[0], r.fractions[1]);
  EXPECT_NEAR(r.fractions[0] + r.fractions[1], 1.0, 1e-9);
}

TEST(EqualTime, NonMonotoneCurveHandledViaEnvelope) {
  // Slightly non-monotone fitted curve (negative ln-coefficient dip).
  fit::PerfModel wobbly;
  wobbly.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX,
                       fit::BasisFn::kLnX};
  wobbly.exec.coefficients = {0.5, 2.0, 0.02};
  const EqualTimeResult r = solve_equal_time(
      std::vector<fit::PerfModel>{wobbly, affine_model(0.0, 1.0)});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.fractions[0] + r.fractions[1], 1.0, 1e-9);
  EXPECT_GT(r.fractions[1], r.fractions[0]);  // the affine unit is faster
}

// ---- Block selection (interior point + fallback) --------------------------

TEST(BlockSelection, MatchesAnalyticOnAffineCurves) {
  std::vector<fit::PerfModel> models{affine_model(0.01, 1.0, 0.3, 0.001),
                                     affine_model(0.02, 4.0, 0.3, 0.002),
                                     affine_model(0.005, 9.0, 0.3, 0.001)};
  const BlockSelection ip = select_block_sizes(models);
  ASSERT_TRUE(ip.ok);
  EXPECT_FALSE(ip.used_fallback);

  EqualTimeOptions eq_opts;
  const EqualTimeResult eq = solve_equal_time(models, eq_opts);
  ASSERT_TRUE(eq.ok);
  for (std::size_t g = 0; g < models.size(); ++g)
    EXPECT_NEAR(ip.fractions[g], eq.fractions[g], 0.02)
        << "unit " << g;
}

TEST(BlockSelection, FractionsSumToTarget) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 2.0),
                                     affine_model(0.0, 3.0),
                                     affine_model(0.0, 4.0)};
  BlockSelectionOptions opts;
  opts.total_fraction = 0.25;
  const BlockSelection sel = select_block_sizes(models, opts);
  ASSERT_TRUE(sel.ok);
  const double sum =
      std::accumulate(sel.fractions.begin(), sel.fractions.end(), 0.0);
  EXPECT_NEAR(sum, 0.25, 1e-9);
}

TEST(BlockSelection, EqualTimesAchieved) {
  std::vector<fit::PerfModel> models{affine_model(0.03, 2.0, 0.2, 0.01),
                                     affine_model(0.01, 7.0, 0.2, 0.0),
                                     affine_model(0.02, 3.5, 0.2, 0.005)};
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  const double t0 = models[0].total_time(sel.fractions[0]);
  for (std::size_t g = 1; g < models.size(); ++g)
    EXPECT_NEAR(models[g].total_time(sel.fractions[g]), t0, 0.03 * t0);
}

TEST(BlockSelection, NonlinearCurvesSolved) {
  fit::PerfModel gpu;  // saturating-ish: ln term
  gpu.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX, fit::BasisFn::kXLnX};
  gpu.exec.coefficients = {0.01, 1.2, 0.15};
  gpu.transfer = {0.4, 0.001};
  const BlockSelection sel = select_block_sizes(
      std::vector<fit::PerfModel>{gpu, affine_model(0.02, 6.0, 0.4, 0.001)});
  ASSERT_TRUE(sel.ok);
  const double t0 = gpu.total_time(sel.fractions[0]);
  const double t1 =
      affine_model(0.02, 6.0, 0.4, 0.001).total_time(sel.fractions[1]);
  EXPECT_NEAR(t1, t0, 0.05 * t0);
}

TEST(BlockSelection, WarmStartIsUsedAndSolvesNoHarder) {
  std::vector<fit::PerfModel> models{affine_model(0.03, 2.0, 0.2, 0.01),
                                     affine_model(0.01, 7.0, 0.2, 0.0),
                                     affine_model(0.02, 3.5, 0.2, 0.005)};
  const BlockSelection cold = select_block_sizes(models);
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.warm_started);

  // A re-fit only perturbs the curves (§III-D), so re-solving from the
  // previous fractions must converge to the same quality with no more KKT
  // factorizations than the cold analytic-started solve.
  std::vector<fit::PerfModel> refit = models;
  refit[1].exec.coefficients[1] *= 1.05;
  BlockSelectionOptions opts;
  opts.warm_start = cold.fractions;
  const BlockSelection warm = select_block_sizes(refit, opts);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_FALSE(warm.used_fallback);
  EXPECT_LE(warm.ip.kkt_solves, cold.ip.kkt_solves);
  const double t0 = refit[0].total_time(warm.fractions[0]);
  for (std::size_t g = 1; g < refit.size(); ++g)
    EXPECT_NEAR(refit[g].total_time(warm.fractions[g]), t0, 0.05 * t0);
}

TEST(BlockSelection, MismatchedWarmStartIsIgnored) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 2.0)};
  BlockSelectionOptions opts;
  opts.warm_start = {0.7};  // wrong length: fall back to the analytic start
  const BlockSelection sel = select_block_sizes(models, opts);
  ASSERT_TRUE(sel.ok);
  EXPECT_FALSE(sel.warm_started);
}

TEST(BlockSelection, SingleUnit) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0)};
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  EXPECT_DOUBLE_EQ(sel.fractions[0], 1.0);
}

TEST(BlockSelection, FlatModelGetsMinimumShare) {
  fit::PerfModel flat;
  flat.exec.terms = {fit::BasisFn::kOne};
  flat.exec.coefficients = {5.0};
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 2.0), flat};
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  EXPECT_LE(sel.fractions[2], 1e-5);
  EXPECT_NEAR(
      std::accumulate(sel.fractions.begin(), sel.fractions.end(), 0.0), 1.0,
      1e-6);
}

TEST(BlockSelection, ManyUnitsScale) {
  Rng rng(3);
  std::vector<fit::PerfModel> models;
  for (int i = 0; i < 16; ++i)
    models.push_back(affine_model(rng.uniform(0.0, 0.05),
                                  rng.uniform(0.5, 10.0), 0.3, 0.001));
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  const double t0 = models[0].total_time(sel.fractions[0]);
  for (std::size_t g = 1; g < models.size(); ++g)
    EXPECT_NEAR(models[g].total_time(sel.fractions[g]), t0, 0.05 * t0);
}

TEST(BlockSelection, ReportsSolveTime) {
  std::vector<fit::PerfModel> models{affine_model(0.0, 1.0),
                                     affine_model(0.0, 2.0)};
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  EXPECT_GE(sel.solve_seconds, 0.0);
  EXPECT_LT(sel.solve_seconds, 5.0);
}

// ---- Overlap cost regime ---------------------------------------------------

fit::PerfModel with_overlap(fit::PerfModel m, double overlap) {
  m.overlap = overlap;
  return m;
}

TEST(OverlapModel, ZeroOverlapIsBitIdenticalToAdditive) {
  const fit::PerfModel m = affine_model(0.01, 2.0, 0.7, 0.003);
  ASSERT_EQ(m.regime(), fit::CostRegime::kAdditive);
  for (double x : {1e-4, 0.01, 0.3, 1.0}) {
    // Exact equality on purpose: sync-mode schedules must reproduce the
    // pre-pipelining behavior bit for bit.
    EXPECT_EQ(m.total_time(x), m.execution_time(x) + m.transfer(x)) << x;
    EXPECT_EQ(m.total_derivative(x),
              m.exec.derivative(x) + m.transfer.derivative(x))
        << x;
  }
}

TEST(OverlapModel, FullOverlapApproachesMaxFromAbove) {
  const fit::PerfModel m =
      with_overlap(affine_model(0.01, 2.0, 0.7, 0.003), 1.0);
  ASSERT_EQ(m.regime(), fit::CostRegime::kOverlap);
  for (double x : {0.05, 0.2, 0.8}) {
    const double f = m.execution_time(x);
    const double g = m.transfer(x);
    const double t = m.total_time(x);
    // Steady state can never beat the larger phase, and the softmin
    // smoothing overshoots max(F, G) by at most beta * (F + G) / 2.
    EXPECT_GE(t, std::max(f, g) - 1e-12) << x;
    EXPECT_LE(t, std::max(f, g) + 0.05 * (f + g) / 2.0 + 1e-12) << x;
    EXPECT_LT(t, f + g) << x;
  }
}

TEST(OverlapModel, DerivativesMatchFiniteDifferences) {
  fit::PerfModel m;
  m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX, fit::BasisFn::kXLnX};
  m.exec.coefficients = {0.01, 1.2, 0.15};
  m.transfer = {0.8, 0.002};
  m.overlap = 0.6;
  const double h = 1e-6;
  for (double x : {0.05, 0.2, 0.5, 0.9}) {
    const double d_fd = (m.total_time(x + h) - m.total_time(x - h)) / (2 * h);
    EXPECT_NEAR(m.total_derivative(x), d_fd,
                1e-5 * std::max(1.0, std::abs(d_fd)))
        << x;
    const double d2_fd =
        (m.total_derivative(x + h) - m.total_derivative(x - h)) / (2 * h);
    EXPECT_NEAR(m.total_second_derivative(x), d2_fd,
                1e-4 * std::max(1.0, std::abs(d2_fd)))
        << x;
  }
}

TEST(OverlapModel, EqualTimesAchievedUnderMixedRegimes) {
  // A heavily pipelined unit, a partially overlapped one, and a sync one:
  // the interior-point selection must still equalize finish times, now
  // measured under each unit's own regime.
  std::vector<fit::PerfModel> models{
      with_overlap(affine_model(0.02, 2.0, 1.5, 0.01), 0.9),
      with_overlap(affine_model(0.01, 5.0, 0.8, 0.02), 0.4),
      affine_model(0.0, 7.0, 0.5, 0.0)};
  const BlockSelection sel = select_block_sizes(models);
  ASSERT_TRUE(sel.ok);
  EXPECT_FALSE(sel.used_fallback);
  const double t0 = models[0].total_time(sel.fractions[0]);
  for (std::size_t g = 1; g < models.size(); ++g)
    EXPECT_NEAR(models[g].total_time(sel.fractions[g]), t0, 0.05 * t0)
        << "unit " << g;

  // Pipelining hides most of unit 0's wire time, so it must earn a
  // larger share than the identical curves would under the additive
  // regime.
  std::vector<fit::PerfModel> additive = models;
  for (fit::PerfModel& m : additive) m.overlap = 0.0;
  const BlockSelection sync_sel = select_block_sizes(additive);
  ASSERT_TRUE(sync_sel.ok);
  EXPECT_GT(sel.fractions[0], sync_sel.fractions[0]);
}

TEST(OverlapModel, AnalyticSolverConvergesUnderOverlapToo) {
  std::vector<fit::PerfModel> models{
      with_overlap(affine_model(0.01, 3.0, 2.0, 0.005), 1.0),
      with_overlap(affine_model(0.02, 4.0, 1.0, 0.01), 0.7)};
  const EqualTimeResult r = solve_equal_time(models);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.fractions[0] + r.fractions[1], 1.0, 1e-9);
  const double t0 = models[0].total_time(r.fractions[0]);
  const double t1 = models[1].total_time(r.fractions[1]);
  EXPECT_NEAR(t1, t0, 0.05 * std::max(t0, t1));
}

// ---- Grain rounding --------------------------------------------------------

TEST(RoundToGrains, ExactSum) {
  std::vector<double> fr{0.3, 0.3, 0.4};
  const auto g = round_to_grains(fr, 10);
  EXPECT_EQ(std::accumulate(g.begin(), g.end(), std::size_t{0}), 10u);
  EXPECT_EQ(g[2], 4u);
}

TEST(RoundToGrains, LargestRemainderWins) {
  std::vector<double> fr{0.55, 0.45};
  const auto g = round_to_grains(fr, 3);
  EXPECT_EQ(g[0] + g[1], 3u);
  EXPECT_GE(g[0], g[1]);
}

TEST(RoundToGrains, UnnormalizedInputAccepted) {
  std::vector<double> fr{1.0, 3.0};  // sums to 4, treated as shares
  const auto g = round_to_grains(fr, 8);
  EXPECT_EQ(g[0], 2u);
  EXPECT_EQ(g[1], 6u);
}

TEST(RoundToGrains, ZeroTotal) {
  std::vector<double> fr{0.5, 0.5};
  const auto g = round_to_grains(fr, 0);
  EXPECT_EQ(g[0] + g[1], 0u);
}

class RoundingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundingProperty, AlwaysSumsAndStaysClose) {
  const std::size_t total = GetParam();
  Rng rng(total);
  std::vector<double> fr(7);
  double sum = 0.0;
  for (auto& f : fr) {
    f = rng.uniform(0.01, 1.0);
    sum += f;
  }
  for (auto& f : fr) f /= sum;
  const auto g = round_to_grains(fr, total);
  EXPECT_EQ(std::accumulate(g.begin(), g.end(), std::size_t{0}), total);
  for (std::size_t i = 0; i < fr.size(); ++i)
    EXPECT_NEAR(static_cast<double>(g[i]),
                fr[i] * static_cast<double>(total), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Totals, RoundingProperty,
                         ::testing::Values(1, 7, 100, 1023, 65536));

}  // namespace
}  // namespace plbhec::solver
