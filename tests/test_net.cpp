// Tests for the networked cluster transport: shared codec round-trips,
// frame decoding robustness (truncation at every byte boundary, magic /
// version / type / checksum corruption, random-byte fuzz), daemon <->
// coordinator loopback round-trips with bit-identical results vs
// in-process execution, profile sync, heartbeat-timeout demotion with
// zero lost grains, reconnect after a daemon restart, the engine's
// detach_unit contract (including its death conditions), and the
// pipelined data plane: chunked blocks bit-identical to sync, out-of-
// order and batched result frames, all-or-nothing application on chunk
// failure, mid-pipeline freeze with zero lost grains, partial send/recv
// through shrunken kernel socket buffers, and the batch codec's bounds.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/nbody.hpp"
#include "plbhec/apps/registry.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/common/codec.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/net/remote_unit.hpp"
#include "plbhec/net/socket.hpp"
#include "plbhec/net/wire.hpp"
#include "plbhec/net/workerd.hpp"
#include "plbhec/rt/thread_engine.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::net {
namespace {

// ---- Shared codec ---------------------------------------------------------

TEST(Codec, FixedWidthRoundTrip) {
  std::vector<std::uint8_t> buf;
  common::ByteWriter w{buf};
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5678);
  w.str("plbhec");

  common::ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1234.5678);
  std::string s;
  EXPECT_TRUE(r.str(s, 64));
  EXPECT_EQ(s, "plbhec");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, VarintRoundTripAndBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 UINT64_MAX};
  for (std::uint64_t v : cases) {
    std::vector<std::uint8_t> buf;
    common::ByteWriter w{buf};
    w.var_u64(v);
    common::ByteReader r{buf};
    EXPECT_EQ(r.var_u64(), v) << v;
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Codec, VarintRejectsOverlongAndNonCanonical) {
  // 11 continuation bytes: longer than any u64 needs.
  std::vector<std::uint8_t> overlong(11, 0x80);
  common::ByteReader r1{overlong};
  (void)r1.var_u64();
  EXPECT_FALSE(r1.ok);

  // 10-byte encoding whose final byte sets bits past 2^64.
  std::vector<std::uint8_t> too_big(9, 0x80);
  too_big.push_back(0x7f);
  common::ByteReader r2{too_big};
  (void)r2.var_u64();
  EXPECT_FALSE(r2.ok);
}

TEST(Codec, ReaderLatchesOnOverrun) {
  std::vector<std::uint8_t> buf = {1, 2};
  common::ByteReader r{buf};
  (void)r.u32();  // needs 4 bytes, only 2 remain
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.u64(), 0u);  // all further reads fail closed
  EXPECT_FALSE(r.ok);
}

// ---- Frame decoding -------------------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  HelloMsg msg;
  msg.node = "test-node";
  return encode_frame(MsgType::kHello, msg.encode());
}

TEST(Wire, FrameRoundTrip) {
  const std::vector<std::uint8_t> bytes = sample_frame();
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes, &frame, &consumed), FrameStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, MsgType::kHello);
  const auto msg = HelloMsg::decode(frame.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->node, "test-node");
  EXPECT_EQ(msg->protocol, kProtocolVersion);
}

TEST(Wire, TruncationAtEveryByteBoundaryRejects) {
  const std::vector<std::uint8_t> bytes = sample_frame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    const FrameStatus status = decode_frame(
        std::span<const std::uint8_t>(bytes.data(), len), &frame, nullptr);
    EXPECT_NE(status, FrameStatus::kOk) << "accepted truncation at " << len;
  }
}

TEST(Wire, BadMagicRejects) {
  std::vector<std::uint8_t> bytes = sample_frame();
  bytes[0] ^= 0x01;
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, &frame, nullptr), FrameStatus::kBadMagic);
}

TEST(Wire, VersionSkewRejects) {
  std::vector<std::uint8_t> bytes = sample_frame();
  bytes[8] += 1;  // version u32 lives right after the 8-byte magic
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, &frame, nullptr), FrameStatus::kVersionSkew);
}

TEST(Wire, UnknownTypeRejects) {
  std::vector<std::uint8_t> bytes = sample_frame();
  bytes[12] = 0xee;  // type byte after magic + version
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, &frame, nullptr), FrameStatus::kBadType);
}

TEST(Wire, OversizedPayloadLengthRejects) {
  std::vector<std::uint8_t> bytes = sample_frame();
  bytes[13 + 7] = 0xff;  // high byte of the u64 payload length
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, &frame, nullptr), FrameStatus::kTooLarge);
}

TEST(Wire, PayloadCorruptionFailsChecksum) {
  std::vector<std::uint8_t> bytes = sample_frame();
  bytes[kFrameHeaderBytes] ^= 0x40;  // first payload byte
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, &frame, nullptr), FrameStatus::kBadChecksum);
}

TEST(Wire, SingleByteFlipsNeverDecodeToADifferentFrame) {
  const std::vector<std::uint8_t> good = sample_frame();
  Frame reference;
  ASSERT_EQ(decode_frame(good, &reference, nullptr), FrameStatus::kOk);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bytes = good;
    bytes[i] ^= 0x5a;
    Frame frame;
    if (decode_frame(bytes, &frame, nullptr) == FrameStatus::kOk) {
      // A flip may land in the payload-length's low bytes and still frame
      // correctly only if everything re-checksums — then the payload must
      // equal the original (i.e. the flip was in trailing checksum bits
      // that happened to match, which FNV makes effectively impossible).
      EXPECT_EQ(frame.payload, reference.payload) << "byte " << i;
    }
  }
}

TEST(Wire, RandomByteFuzzNeverCrashesOrAccepts) {
  std::mt19937_64 rng(0xf00du);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    Frame frame;
    const FrameStatus status = decode_frame(bytes, &frame, nullptr);
    // Random bytes never start with the magic, so nothing decodes.
    EXPECT_NE(status, FrameStatus::kOk);
  }
}

TEST(Wire, MessageBodiesRejectTrailingGarbage) {
  HeartbeatMsg hb;
  hb.sequence = 7;
  std::vector<std::uint8_t> payload = hb.encode();
  payload.push_back(0x00);
  EXPECT_FALSE(HeartbeatMsg::decode(payload).has_value());
}

TEST(Wire, BlockResultRoundTripWithResults) {
  BlockResultMsg msg;
  msg.run_id = 3;
  msg.sequence = 9;
  msg.begin = 128;
  msg.end = 256;
  msg.exec_seconds = 0.125;
  msg.ok = true;
  msg.results = {1, 2, 3, 4, 5};
  const auto decoded = BlockResultMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->begin, 128u);
  EXPECT_EQ(decoded->end, 256u);
  EXPECT_EQ(decoded->exec_seconds, 0.125);
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->results, msg.results);
}

// ---- Workload registry ----------------------------------------------------

TEST(Registry, RebuildsEveryAppFromItsOwnSpec) {
  apps::MatMulWorkload matmul(96, /*materialize=*/true);
  apps::BlackScholesWorkload bs(apps::BlackScholesWorkload::Config{500, 0,
                                                                   32, 77});
  apps::GrnWorkload grn(apps::GrnWorkload::Config{64, 32, 8, true, 11});
  apps::SyntheticWorkload synth(apps::SyntheticWorkload::Config{});
  apps::SpmvWorkload spmv(apps::SpmvWorkload::Config{1000, 24, true, 5});
  apps::StencilWorkload stencil(
      apps::StencilWorkload::Config{64, 50, true, 9});
  apps::NbodyWorkload nbody(apps::NbodyWorkload::Config{300, true, 3});
  for (const rt::Workload* w :
       {static_cast<const rt::Workload*>(&matmul),
        static_cast<const rt::Workload*>(&bs),
        static_cast<const rt::Workload*>(&grn),
        static_cast<const rt::Workload*>(&synth),
        static_cast<const rt::Workload*>(&spmv),
        static_cast<const rt::Workload*>(&stencil),
        static_cast<const rt::Workload*>(&nbody)}) {
    std::string error;
    const auto rebuilt = apps::make_workload(w->remote_spec(), &error);
    ASSERT_NE(rebuilt, nullptr) << w->remote_spec() << ": " << error;
    EXPECT_EQ(rebuilt->total_grains(), w->total_grains());
    EXPECT_TRUE(rebuilt->supports_remote_execution());
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "unknown:x=1", "matmul", "matmul:n=0", "matmul:n=999999",
        "matmul:n=abc", "matmul:n=", "matmul:n=1,n=2", "grn:genes=4,=5",
        "blackscholes:options=0", "synthetic:grains=", "spmv:rows=0",
        "spmv:rows=100,nnz=1000", "stencil:ny=100,nx=0",
        "stencil:nx=512", "nbody:bodies=99999999", "nbody"}) {
    std::string error;
    EXPECT_EQ(apps::make_workload(spec, &error), nullptr) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---- Loopback daemon round-trips ------------------------------------------

// Tight liveness budget (60 ms) for the failure-injection tests, where
// fast demotion IS the behavior under test.
RemoteUnitOptions fast_options(std::uint16_t port) {
  RemoteUnitOptions ro;
  ro.port = port;
  ro.heartbeat_interval_seconds = 0.02;
  ro.max_missed_heartbeats = 3;
  ro.max_reconnect_attempts = 2;
  ro.backoff_initial_seconds = 0.01;
  ro.backoff_max_seconds = 0.05;
  return ro;
}

// Generous liveness budget (3 s) for the functional tests: a parallel
// ctest run starves threads long enough that a 60 ms heartbeat window
// falsely demotes a perfectly healthy loopback daemon.
RemoteUnitOptions steady_options(std::uint16_t port) {
  RemoteUnitOptions ro = fast_options(port);
  ro.heartbeat_interval_seconds = 0.2;
  ro.max_missed_heartbeats = 15;
  return ro;
}

TEST(Loopback, MatMulRemoteBlocksAreBitIdenticalToLocal) {
  constexpr std::size_t kN = 128;
  WorkerDaemon daemon({0, "wd", 1.0});

  apps::MatMulWorkload via_wire(kN, /*materialize=*/true);
  RemoteUnit unit(steady_options(daemon.port()));
  ASSERT_TRUE(unit.begin_run(via_wire));
  rt::BlockTiming timing;
  ASSERT_TRUE(unit.execute(via_wire, 0, kN / 2, timing));
  ASSERT_TRUE(unit.execute(via_wire, kN / 2, kN, timing));
  unit.end_run();
  EXPECT_GE(timing.exec_seconds, 0.0);
  EXPECT_GE(timing.transfer_seconds, 0.0);

  apps::MatMulWorkload local(kN, /*materialize=*/true);
  local.execute_cpu(0, kN);
  EXPECT_EQ(via_wire.result(), local.result());
  EXPECT_EQ(daemon.blocks_served(), 2u);
}

// The daemon may dispatch a different ISA variant than this process (its
// kdisp probe is its own business), so this is the end-to-end check of
// the variant bit-identity contract: results crossing the wire must equal
// local execution exactly for every dispatched family.
template <typename Workload, typename Fetch>
void expect_remote_bit_identical(Workload&& via_wire, Workload&& local,
                                 const Fetch& fetch) {
  WorkerDaemon daemon({0, "wd", 1.0});
  RemoteUnit unit(steady_options(daemon.port()));
  const std::size_t grains = via_wire.total_grains();
  ASSERT_TRUE(unit.begin_run(via_wire)) << via_wire.remote_spec();
  rt::BlockTiming timing;
  ASSERT_TRUE(unit.execute(via_wire, 0, grains / 2, timing));
  ASSERT_TRUE(unit.execute(via_wire, grains / 2, grains, timing));
  unit.end_run();
  local.execute_cpu(0, grains);
  EXPECT_EQ(fetch(via_wire), fetch(local)) << via_wire.remote_spec();
  EXPECT_EQ(daemon.blocks_served(), 2u);
}

TEST(Loopback, SpmvRemoteBlocksAreBitIdenticalToLocal) {
  const apps::SpmvWorkload::Config cfg{1500, 40, true, 0x59a125};
  expect_remote_bit_identical(
      apps::SpmvWorkload(cfg), apps::SpmvWorkload(cfg),
      [](const apps::SpmvWorkload& w) { return w.y(); });
}

TEST(Loopback, StencilRemoteBlocksAreBitIdenticalToLocal) {
  const apps::StencilWorkload::Config cfg{130, 120, true, 0x57e4c11};
  expect_remote_bit_identical(
      apps::StencilWorkload(cfg), apps::StencilWorkload(cfg),
      [](const apps::StencilWorkload& w) { return w.output(); });
}

TEST(Loopback, NbodyRemoteBlocksAreBitIdenticalToLocal) {
  const apps::NbodyWorkload::Config cfg{400, true, 0xb0d1e5};
  expect_remote_bit_identical(
      apps::NbodyWorkload(cfg), apps::NbodyWorkload(cfg),
      [](const apps::NbodyWorkload& w) {
        std::vector<double> all = w.ax();
        all.insert(all.end(), w.ay().begin(), w.ay().end());
        all.insert(all.end(), w.az().begin(), w.az().end());
        return all;
      });
}

TEST(Loopback, EngineWithRemoteUnitsConservesGrains) {
  // All units are remote so every grain must cross the wire: with a local
  // unit in the mix, a starved CI machine can let it drain the whole pool
  // before a daemon's first block lands, making per-daemon participation
  // unassertable. Mixed local+remote runs are covered by the Failure
  // tests (which pin participation with wait_for_first_block) and by
  // bench_net's distributed experiment.
  constexpr std::size_t kGrains = 4000;
  WorkerDaemon d1({0, "wd1", 1.0});
  WorkerDaemon d2({0, "wd2", 2.0});

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<RemoteUnit>(steady_options(d1.port())));
  units.push_back(std::make_unique<RemoteUnit>(steady_options(d2.port())));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{kGrains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                      0.5, 0.5, 200});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(workload.executed_grains(), kGrains);
  EXPECT_EQ(r.unit_stats[0].grains + r.unit_stats[1].grains, kGrains);
  EXPECT_GT(d1.blocks_served() + d2.blocks_served(), 0u);
}

TEST(Loopback, BeginRunFailsForUnknownSpecWithoutCrashing) {
  WorkerDaemon daemon({0, "wd", 1.0});
  // MatMul without materialization has no remote spec.
  apps::MatMulWorkload workload(64, /*materialize=*/false);
  RemoteUnit unit(steady_options(daemon.port()));
  EXPECT_FALSE(unit.begin_run(workload));
}

TEST(Loopback, ProfileSyncMergesBothWays) {
  WorkerDaemon daemon({0, "wd", 1.0});

  fit::SampleSet exec;
  fit::SampleSet transfer;
  for (int i = 1; i <= 8; ++i) {
    const double x = 0.1 * i;
    exec.add(x, 2.0 * x + 0.01);
    transfer.add(x, 0.5 * x + 0.002);
  }
  svc::ProfileStore coordinator_store;
  coordinator_store.put(svc::make_entry("matmul-512", "cpu", exec, transfer,
                                        512.0, {}));

  RemoteUnit unit(steady_options(daemon.port()));
  ASSERT_TRUE(unit.sync_profiles(coordinator_store));
  // The daemon now holds the pushed entry...
  EXPECT_NE(daemon.profiles().find("matmul-512", "cpu"), nullptr);
  // ...and a second sync from an empty store pulls it back down.
  svc::ProfileStore fresh;
  ASSERT_TRUE(unit.sync_profiles(fresh));
  EXPECT_NE(fresh.find("matmul-512", "cpu"), nullptr);
}

// ---- Failure handling -----------------------------------------------------

// Waits until the daemon has served at least one block (i.e. the run is
// demonstrably in flight), so fault injection cannot race run completion.
template <typename Daemon>
void wait_for_first_block(const Daemon& daemon) {
  for (int i = 0; i < 2000 && daemon.blocks_served() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(Failure, FrozenDaemonTriggersHeartbeatDemotionWithZeroLostGrains) {
  constexpr std::size_t kGrains = 10'000;
  WorkerDaemon healthy({0, "wd-ok", 1.0});
  WorkerDaemon doomed({0, "wd-doomed", 1.0});

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<rt::LocalExecUnit>(
      rt::LocalExecUnit::Options{"local0", 1.0, true}));
  units.push_back(std::make_unique<RemoteUnit>(steady_options(healthy.port())));
  auto doomed_unit =
      std::make_unique<RemoteUnit>(fast_options(doomed.port()));
  RemoteUnit* doomed_ptr = doomed_unit.get();
  units.push_back(std::move(doomed_unit));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{kGrains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                      0.5, 0.5, 6'000});

  // Freeze the doomed daemon mid-run: its connections stay open but stop
  // answering, so only the heartbeat timeout can detect the hang.
  std::thread killer([&] {
    wait_for_first_block(doomed);
    doomed.freeze();
  });
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  killer.join();
  doomed.unfreeze();

  ASSERT_TRUE(r.ok) << r.error;
  // Zero lost grains: every grain executed exactly once despite the hang.
  EXPECT_EQ(workload.executed_grains(), kGrains);
  EXPECT_TRUE(doomed_ptr->demoted());
  EXPECT_GT(doomed_ptr->heartbeats_missed(), 0u);
  EXPECT_TRUE(r.unit_stats[2].failed);
  doomed.stop();
}

TEST(Failure, KilledDaemonIsDemotedAfterBoundedReconnects) {
  constexpr std::size_t kGrains = 10'000;
  WorkerDaemon healthy({0, "wd-ok", 1.0});
  auto doomed = std::make_unique<WorkerDaemon>(
      WorkerDaemonOptions{0, "wd-doomed", 1.0});

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<rt::LocalExecUnit>(
      rt::LocalExecUnit::Options{"local0", 1.0, true}));
  units.push_back(std::make_unique<RemoteUnit>(steady_options(healthy.port())));
  auto doomed_unit =
      std::make_unique<RemoteUnit>(fast_options(doomed->port()));
  RemoteUnit* doomed_ptr = doomed_unit.get();
  units.push_back(std::move(doomed_unit));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{kGrains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                      0.5, 0.5, 6'000});

  std::thread killer([&] {
    wait_for_first_block(*doomed);
    doomed->kill();
  });
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  killer.join();

  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(workload.executed_grains(), kGrains);
  EXPECT_TRUE(doomed_ptr->demoted());
  EXPECT_GT(doomed_ptr->reconnects_attempted(), 0u);
}

TEST(Failure, ReconnectAfterDaemonRestartResumesService) {
  WorkerDaemon first({0, "wd", 1.0});
  const std::uint16_t port = first.port();

  apps::MatMulWorkload workload(64, /*materialize=*/true);
  RemoteUnitOptions ro = steady_options(port);
  ro.max_reconnect_attempts = 10;
  ro.backoff_initial_seconds = 0.02;
  RemoteUnit unit(ro);
  ASSERT_TRUE(unit.begin_run(workload));
  rt::BlockTiming timing;
  ASSERT_TRUE(unit.execute(workload, 0, 16, timing));

  // Kill and immediately restart a daemon on the same port; the next
  // block must survive through the reconnect path.
  first.kill();
  first.stop();
  WorkerDaemon second({port, "wd2", 1.0});
  ASSERT_TRUE(unit.execute(workload, 16, 64, timing));
  unit.end_run();
  EXPECT_FALSE(unit.demoted());
  EXPECT_GT(unit.reconnects_attempted(), 0u);

  apps::MatMulWorkload local(64, /*materialize=*/true);
  local.execute_cpu(0, 64);
  EXPECT_EQ(workload.result(), local.result());
}

// ---- Pipelined data plane -------------------------------------------------

RemoteUnitOptions pipelined_options(std::uint16_t port, std::size_t depth) {
  RemoteUnitOptions ro = steady_options(port);
  ro.pipeline_depth = depth;
  return ro;
}

TEST(Pipeline, ChunkedMatMulIsBitIdenticalToLocal) {
  constexpr std::size_t kN = 128;
  WorkerDaemon daemon({0, "wd", 1.0});

  apps::MatMulWorkload via_wire(kN, /*materialize=*/true);
  RemoteUnit unit(pipelined_options(daemon.port(), 4));
  ASSERT_TRUE(unit.begin_run(via_wire));
  rt::BlockTiming timing;
  ASSERT_TRUE(unit.execute(via_wire, 0, kN, timing));
  unit.end_run();

  // One engine block of 128 rows became a window of sequence-numbered
  // chunks (depth 4 -> up to 8), and the result rows are bit-identical
  // to a local run: matmul rows don't depend on block decomposition.
  EXPECT_GT(unit.wire_stats().chunks_pipelined, 1u);
  EXPECT_GT(unit.wire_stats().inflight_peak, 1u);
  EXPECT_GT(timing.wall_seconds, 0.0);
  EXPECT_LE(timing.wall_seconds,
            timing.transfer_seconds + timing.exec_seconds + 1.0);
  apps::MatMulWorkload local(kN, /*materialize=*/true);
  local.execute_cpu(0, kN);
  EXPECT_EQ(via_wire.result(), local.result());
  EXPECT_EQ(daemon.blocks_served(), unit.wire_stats().chunks_pipelined);
}

// The fake-server tests drive a RemoteUnit against a scripted peer, so
// frame ordering is fully controlled. Both share this setup: 24 grains /
// min_chunk 4 with a window deeper than the chunk count puts all 6
// chunks in flight before the first reply.
struct FakeServerRig {
  std::unique_ptr<TcpListener> listener = TcpListener::bind_loopback(0);
  apps::SyntheticWorkload::Config cfg;
  FakeServerRig() {
    cfg.grains = 24;
    cfg.spin_iters_per_grain = 50;
    cfg.result_payload_per_grain = 8;
  }
  [[nodiscard]] RemoteUnitOptions unit_options() const {
    RemoteUnitOptions ro = steady_options(listener->port());
    ro.pipeline_depth = 8;
    ro.min_chunk_grains = 4;
    ro.max_reconnect_attempts = 1;
    ro.backoff_initial_seconds = 0.01;
    return ro;
  }
  // Accepts the data connection, answers Hello and BeginRun, reads the
  // whole chunk window, then hands the assignments (and a result
  // factory) to `reply`. Returns false on any protocol surprise.
  template <typename Reply>
  [[nodiscard]] bool serve_one_window(Reply reply) {
    std::unique_ptr<TcpConn> conn = listener->accept(5.0);
    if (conn == nullptr) return false;
    Frame f;
    if (read_frame(*conn, &f, 5.0) != FrameStatus::kOk ||
        f.type != MsgType::kHello)
      return false;
    HelloAckMsg hello_ack;
    hello_ack.daemon = "fake";
    if (!write_frame(*conn, MsgType::kHelloAck, hello_ack.encode()))
      return false;
    if (read_frame(*conn, &f, 5.0) != FrameStatus::kOk ||
        f.type != MsgType::kBeginRun)
      return false;
    const auto begin = BeginRunMsg::decode(f.payload);
    if (!begin) return false;
    std::string error;
    std::unique_ptr<rt::Workload> workload =
        apps::make_workload(begin->spec, &error);
    if (workload == nullptr) return false;
    RunAckMsg run_ack;
    run_ack.run_id = begin->run_id;
    run_ack.ok = true;
    if (!write_frame(*conn, MsgType::kRunAck, run_ack.encode())) return false;

    std::vector<AssignBlockMsg> assigns;
    while (assigns.size() < 6) {
      if (read_frame(*conn, &f, 5.0) != FrameStatus::kOk) return false;
      if (f.type != MsgType::kAssignBlock) return false;
      const auto assign = AssignBlockMsg::decode(f.payload);
      if (!assign) return false;
      assigns.push_back(*assign);
    }
    const auto make_result = [&](const AssignBlockMsg& a) {
      BlockResultMsg r;
      r.run_id = a.run_id;
      r.sequence = a.sequence;
      r.begin = a.begin;
      r.end = a.end;
      r.exec_seconds = 0.001;
      r.ok = true;
      r.results.resize(workload->result_bytes(
          static_cast<std::size_t>(a.begin), static_cast<std::size_t>(a.end)));
      workload->write_results(static_cast<std::size_t>(a.begin),
                              static_cast<std::size_t>(a.end),
                              r.results.data());
      return r;
    };
    if (!reply(*conn, assigns, make_result)) return false;
    // Drain until the coordinator's Shutdown (or the link drops).
    (void)read_frame(*conn, &f, 1.0);
    return true;
  }
};

TEST(Pipeline, OutOfOrderAndBatchedResultsAreAccepted) {
  FakeServerRig rig;
  ASSERT_NE(rig.listener, nullptr);
  apps::SyntheticWorkload coordinator_side(rig.cfg);

  std::atomic<bool> served{false};
  std::thread server([&] {
    served = rig.serve_one_window([&](TcpConn& conn, const auto& assigns,
                                      const auto& make_result) {
      // Two singles out of order, then one batch holding the remaining
      // four in reverse: every interleaving must land by sequence.
      if (!write_frame(conn, MsgType::kBlockResult,
                       make_result(assigns[5]).encode()))
        return false;
      if (!write_frame(conn, MsgType::kBlockResult,
                       make_result(assigns[2]).encode()))
        return false;
      BlockResultBatchMsg batch;
      for (int i : {4, 3, 1, 0}) batch.results.push_back(make_result(assigns[i]));
      return write_frame(conn, MsgType::kBlockResultBatch, batch.encode());
    });
  });

  RemoteUnit unit(rig.unit_options());
  ASSERT_TRUE(unit.begin_run(coordinator_side));
  rt::BlockTiming timing;
  ASSERT_TRUE(unit.execute(coordinator_side, 0, rig.cfg.grains, timing));
  unit.end_run();
  server.join();
  EXPECT_TRUE(served.load());

  EXPECT_EQ(coordinator_side.executed_grains(), rig.cfg.grains);
  EXPECT_EQ(unit.wire_stats().chunks_pipelined, 6u);
  EXPECT_EQ(unit.wire_stats().batched_results, 4u);
  EXPECT_EQ(unit.wire_stats().inflight_peak, 6u);
  apps::SyntheticWorkload local(rig.cfg);
  local.execute_cpu(0, rig.cfg.grains);
  EXPECT_NEAR(coordinator_side.checksum(), local.checksum(), 1e-9);
}

TEST(Pipeline, FailedChunkLeavesWorkloadUntouched) {
  FakeServerRig rig;
  ASSERT_NE(rig.listener, nullptr);
  apps::SyntheticWorkload coordinator_side(rig.cfg);

  std::atomic<bool> served{false};
  std::thread server([&] {
    served = rig.serve_one_window([&](TcpConn& conn, const auto& assigns,
                                      const auto& make_result) {
      // One good chunk, then a refusal: the already-buffered good chunk
      // must never reach the workload.
      if (!write_frame(conn, MsgType::kBlockResult,
                       make_result(assigns[0]).encode()))
        return false;
      BlockResultMsg bad = make_result(assigns[1]);
      bad.ok = false;
      bad.error = "injected refusal";
      bad.results.clear();
      return write_frame(conn, MsgType::kBlockResult, bad.encode());
    });
  });

  RemoteUnit unit(rig.unit_options());
  ASSERT_TRUE(unit.begin_run(coordinator_side));
  rt::BlockTiming timing;
  EXPECT_FALSE(unit.execute(coordinator_side, 0, rig.cfg.grains, timing));
  EXPECT_TRUE(unit.demoted());
  unit.end_run();
  server.join();
  EXPECT_TRUE(served.load());

  // All-or-nothing: a failed window applied nothing, so the engine can
  // requeue the whole range on another unit without double execution.
  EXPECT_EQ(coordinator_side.executed_grains(), 0u);
  EXPECT_EQ(coordinator_side.checksum(), 0.0);
}

TEST(Pipeline, FrozenDaemonMidPipelineLosesZeroGrains) {
  constexpr std::size_t kGrains = 10'000;
  WorkerDaemon healthy({0, "wd-ok", 1.0});
  WorkerDaemon doomed({0, "wd-doomed", 1.0});

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<rt::LocalExecUnit>(
      rt::LocalExecUnit::Options{"local0", 1.0, true}));
  units.push_back(
      std::make_unique<RemoteUnit>(pipelined_options(healthy.port(), 4)));
  RemoteUnitOptions doomed_ro = fast_options(doomed.port());
  doomed_ro.pipeline_depth = 4;
  auto doomed_unit = std::make_unique<RemoteUnit>(doomed_ro);
  RemoteUnit* doomed_ptr = doomed_unit.get();
  units.push_back(std::move(doomed_unit));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{kGrains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                      0.5, 0.5, 6'000});

  // Freeze the doomed daemon with a chunk window in flight: the
  // heartbeat demotion must cancel the stalled window and the engine
  // requeue the whole block — the buffered partial results must not
  // leak into the workload.
  std::thread killer([&] {
    wait_for_first_block(doomed);
    doomed.freeze();
  });
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  killer.join();
  doomed.unfreeze();

  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(workload.executed_grains(), kGrains);
  EXPECT_TRUE(doomed_ptr->demoted());
  EXPECT_TRUE(r.unit_stats[2].failed);
  doomed.stop();
}

TEST(Pipeline, EngineRunPublishesWireAndOverlapCounters) {
  constexpr std::size_t kGrains = 4'000;
  WorkerDaemon d1({0, "wd1", 1.0});
  WorkerDaemon d2({0, "wd2", 1.0});

  RemoteUnitOptions ro1 = pipelined_options(d1.port(), 4);
  ro1.name = "wd1";
  RemoteUnitOptions ro2 = pipelined_options(d2.port(), 4);
  ro2.name = "wd2";
  auto u1 = std::make_unique<RemoteUnit>(ro1);
  auto u2 = std::make_unique<RemoteUnit>(ro2);
  RemoteUnit* p1 = u1.get();
  RemoteUnit* p2 = u2.get();
  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::move(u1));
  units.push_back(std::move(u2));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload::Config cfg;
  cfg.grains = kGrains;
  cfg.spin_iters_per_grain = 400;
  cfg.result_payload_per_grain = 64;
  apps::SyntheticWorkload workload(cfg);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(workload.executed_grains(), kGrains);

  // Execution-phase blocks are large enough to chunk, so the pipeline
  // must have engaged on at least one unit...
  EXPECT_GT(p1->wire_stats().chunks_pipelined +
                p2->wire_stats().chunks_pipelined,
            0u);
  for (const RemoteUnit* p : {p1, p2}) {
    EXPECT_GE(p->overlap_fraction(), 0.0);
    EXPECT_LE(p->overlap_fraction(), 1.0);
  }
  // ...the scheduler tracked a per-unit overlap EWMA...
  ASSERT_EQ(plb.overlap_estimates().size(), 2u);
  for (double rho : plb.overlap_estimates()) {
    EXPECT_GE(rho, 0.0);
    EXPECT_LE(rho, 1.0);
  }
  // ...and both the unit wire stats and the fitted transfer models
  // publish into one registry for run summaries.
  obs::CounterRegistry reg;
  p1->publish_counters(reg);
  p2->publish_counters(reg);
  core::publish_transfer_models(reg, plb.models(),
                                core::PlbHecOptions{}.overlap_smoothing);
  EXPECT_EQ(reg.value("net.wd1.chunks_pipelined"),
            p1->wire_stats().chunks_pipelined);
  EXPECT_EQ(reg.value("net.wd2.chunks_pipelined"),
            p2->wire_stats().chunks_pipelined);
  std::size_t model_keys = 0;
  for (const auto& [name, value] : reg.snapshot())
    if (name.rfind("plbhec.unit", 0) == 0) ++model_keys;
  EXPECT_GE(model_keys, 2u * 4u);  // slope, latency, r2, overlap per unit
}

TEST(Pipeline, PartialSendRecvSurvivesTinySocketBuffers) {
  auto listener = TcpListener::bind_loopback(0);
  ASSERT_NE(listener, nullptr);
  auto client = TcpConn::connect("127.0.0.1", listener->port(), 2.0);
  auto server = listener->accept(2.0);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  // Shrink both kernel buffers so a 256 KiB frame takes many partial
  // sendmsg()/recv() rounds — the scatter-gather writer must resume
  // mid-iovec and across iovec boundaries. (Loopback with tiny windows
  // stalls on delayed ACKs, so keep the volume modest.)
  const int small = 8192;
  ASSERT_EQ(setsockopt(client->native_handle(), SOL_SOCKET, SO_SNDBUF,
                       &small, sizeof(small)),
            0);
  ASSERT_EQ(setsockopt(server->native_handle(), SOL_SOCKET, SO_RCVBUF,
                       &small, sizeof(small)),
            0);

  std::vector<std::uint8_t> payload(256u << 10);
  std::mt19937_64 rng(0xcafe);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  std::thread writer([&] {
    FrameScratch scratch;
    for (int i = 0; i < 2; ++i)
      EXPECT_TRUE(
          write_frame(*client, MsgType::kProfileSync, payload, scratch));
  });
  for (int i = 0; i < 2; ++i) {
    Frame f;
    ASSERT_EQ(read_frame(*server, &f, 30.0), FrameStatus::kOk) << i;
    EXPECT_EQ(f.type, MsgType::kProfileSync);
    EXPECT_EQ(f.payload, payload) << i;
  }
  writer.join();
}

TEST(Pipeline, BatchCodecRoundTripPreservesEveryEntry) {
  BlockResultBatchMsg batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    BlockResultMsg r;
    r.run_id = 7;
    r.sequence = 100 + i;
    r.begin = i * 10;
    r.end = i * 10 + 10;
    r.exec_seconds = 0.25 * static_cast<double>(i);
    r.ok = (i % 2) == 0;
    r.error = r.ok ? "" : "boom";
    r.results.assign(static_cast<std::size_t>(i * 3),
                     static_cast<std::uint8_t>(i));
    batch.results.push_back(std::move(r));
  }
  const auto decoded = BlockResultBatchMsg::decode(batch.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->results.size(), batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const BlockResultMsg& a = batch.results[i];
    const BlockResultMsg& b = decoded->results[i];
    EXPECT_EQ(a.run_id, b.run_id);
    EXPECT_EQ(a.sequence, b.sequence);
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.exec_seconds, b.exec_seconds);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.results, b.results);
  }
}

TEST(Pipeline, BatchCodecRejectsMalformedPayloads) {
  // Empty batches never ship (the sender always has >= 1 result).
  BlockResultBatchMsg empty;
  EXPECT_FALSE(BlockResultBatchMsg::decode(empty.encode()).has_value());

  // A count beyond the cap is rejected before any allocation.
  std::vector<std::uint8_t> oversized;
  common::ByteWriter w{oversized};
  w.var_u64(kMaxBatchedResults + 1);
  EXPECT_FALSE(BlockResultBatchMsg::decode(oversized).has_value());

  BlockResultBatchMsg batch;
  for (std::uint64_t i = 0; i < 2; ++i) {
    BlockResultMsg r;
    r.sequence = i;
    r.ok = true;
    r.results = {1, 2, 3};
    batch.results.push_back(std::move(r));
  }
  const std::vector<std::uint8_t> good = batch.encode();
  ASSERT_TRUE(BlockResultBatchMsg::decode(good).has_value());
  // Truncation at every byte boundary fails (count and per-entry length
  // prefixes leave no prefix that parses as a smaller valid batch)...
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_FALSE(BlockResultBatchMsg::decode(
                     std::span<const std::uint8_t>(good.data(), len))
                     .has_value())
        << "accepted truncation at " << len;
  // ...and so does trailing garbage.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0x00);
  EXPECT_FALSE(BlockResultBatchMsg::decode(padded).has_value());
}

// ---- Epoll reactor --------------------------------------------------------

TEST(Reactor, FourConcurrentCoordinatorsGetBitIdenticalResults) {
  constexpr std::size_t kN = 96;
  constexpr int kCoordinators = 4;
  WorkerDaemon daemon({0, "wd", 1.0});

  apps::MatMulWorkload local(kN, /*materialize=*/true);
  local.execute_cpu(0, kN);

  // Four coordinators hammer the same daemon at once; one reactor thread
  // multiplexes all of their connections and every result must still be
  // bit-identical to local execution.
  std::vector<std::unique_ptr<apps::MatMulWorkload>> workloads;
  for (int i = 0; i < kCoordinators; ++i)
    workloads.push_back(
        std::make_unique<apps::MatMulWorkload>(kN, /*materialize=*/true));
  std::atomic<int> failures{0};
  // Rendezvous after begin_run so all four data connections are open at
  // the same instant — otherwise a fast coordinator can come and go
  // before the last one dials and the peak never reaches four.
  std::latch all_connected(kCoordinators);
  std::vector<std::thread> coordinators;
  for (int i = 0; i < kCoordinators; ++i) {
    coordinators.emplace_back([&, i] {
      RemoteUnit unit(steady_options(daemon.port()));
      rt::BlockTiming timing;
      const bool connected = unit.begin_run(*workloads[i]);
      all_connected.arrive_and_wait();
      if (!connected || !unit.execute(*workloads[i], 0, kN / 2, timing) ||
          !unit.execute(*workloads[i], kN / 2, kN, timing))
        failures.fetch_add(1);
      unit.end_run();
    });
  }
  for (std::thread& t : coordinators) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& w : workloads) EXPECT_EQ(w->result(), local.result());

  EXPECT_EQ(daemon.blocks_served(), 2u * kCoordinators);
  EXPECT_GE(daemon.connections_accepted(),
            static_cast<std::uint64_t>(kCoordinators));
  EXPECT_GE(daemon.peak_connections(),
            static_cast<std::uint64_t>(kCoordinators));
  EXPECT_GT(daemon.reactor_wakeups(), 0u);
  EXPECT_GT(daemon.frames_received(), 0u);
}

TEST(Reactor, ConcurrentCoordinatorsLoseZeroGrainsWhenDaemonIsKilled) {
  constexpr std::size_t kGrains = 6'000;
  constexpr int kCoordinators = 4;
  WorkerDaemon doomed({0, "wd-doomed", 1.0});

  // Four independent engines each pair a local unit with a remote unit
  // on the shared doomed daemon. Killing it mid-run cuts every
  // multiplexed connection at once; each engine must finish all of its
  // grains on the surviving local unit.
  struct Rig {
    std::unique_ptr<rt::ThreadEngine> engine;
    std::unique_ptr<apps::SyntheticWorkload> workload;
    RemoteUnit* remote = nullptr;
    rt::RunResult result;
  };
  std::vector<Rig> rigs(kCoordinators);
  for (Rig& rig : rigs) {
    std::vector<std::unique_ptr<rt::ExecUnit>> units;
    units.push_back(std::make_unique<rt::LocalExecUnit>(
        rt::LocalExecUnit::Options{"local0", 1.0, true}));
    auto remote = std::make_unique<RemoteUnit>(fast_options(doomed.port()));
    rig.remote = remote.get();
    units.push_back(std::move(remote));
    rig.engine = std::make_unique<rt::ThreadEngine>(rt::ThreadEngineOptions{},
                                                    std::move(units));
    rig.workload = std::make_unique<apps::SyntheticWorkload>(
        apps::SyntheticWorkload::Config{kGrains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                        0.5, 0.5, 3'000});
  }

  std::thread killer([&] {
    wait_for_first_block(doomed);
    doomed.kill();
  });
  std::vector<std::thread> runners;
  for (Rig& rig : rigs) {
    runners.emplace_back([&rig] {
      core::PlbHecScheduler plb;
      rig.result = rig.engine->run(*rig.workload, plb);
    });
  }
  for (std::thread& t : runners) t.join();
  killer.join();

  for (Rig& rig : rigs) {
    ASSERT_TRUE(rig.result.ok) << rig.result.error;
    // Zero lost grains per coordinator despite the shared daemon dying.
    EXPECT_EQ(rig.workload->executed_grains(), kGrains);
  }
  EXPECT_GT(doomed.connections_accepted(), 0u);
}

// ---- Engine detach contract -----------------------------------------------

TEST(Detach, MidRunDetachReassignsRemainingWork) {
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0, 1.0};
  rt::ThreadEngine engine(opts);
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{5000, 1e6, 64.0, 16.0, 2.0, 0.97, 0.5,
                                      0.5, 2000});
  std::thread detacher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.detach_unit(2);
  });
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  detacher.join();

  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(workload.executed_grains(), 5000u);
  EXPECT_TRUE(engine.is_detached(2));
  EXPECT_EQ(engine.active_unit_count(), 2u);
}

TEST(Detach, DetachedUnitStaysOutAcrossRuns) {
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0};
  rt::ThreadEngine engine(opts);
  engine.detach_unit(1);
  EXPECT_EQ(engine.active_unit_count(), 1u);

  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{500, 1e6, 64.0, 16.0, 2.0, 0.97, 0.5,
                                      0.5, 200});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.unit_stats[1].grains, 0u);
  EXPECT_EQ(workload.executed_grains(), 500u);
}

TEST(Detach, AllUnitsDetachedFailsTheRunCleanly) {
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0};
  rt::ThreadEngine engine(opts);
  engine.detach_unit(0);
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{100, 1e6, 64.0, 16.0, 2.0, 0.97, 0.5,
                                      0.5, 100});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

using DetachDeathTest = ::testing::Test;

TEST(DetachDeathTest, OutOfRangeUnitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0};
  rt::ThreadEngine engine(opts);
  EXPECT_DEATH(engine.detach_unit(7), "precondition");
}

TEST(DetachDeathTest, DoubleDetachAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0};
  rt::ThreadEngine engine(opts);
  engine.detach_unit(0);
  EXPECT_DEATH(engine.detach_unit(0), "precondition");
}

}  // namespace
}  // namespace plbhec::net
