// Tests for the multi-tenant service layer: ProfileStore format
// robustness (truncation / magic / checksum / version skew reject cleanly
// and fall back to cold start), bit-identical warm-start round-trips,
// lease-target fairness properties, JobManager admission ordering,
// replay determinism, and the stretch bound under a bursty mixed-priority
// trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/rt/profile_db.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/svc/job_manager.hpp"
#include "plbhec/svc/lease.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::svc {
namespace {

// ---- ProfileStore ---------------------------------------------------------

/// A well-conditioned sample curve: near-linear with an intercept, the
/// kind of profile a real modeling phase produces.
fit::SampleSet curve_samples(double slope, double intercept,
                             std::size_t count) {
  fit::SampleSet set;
  for (std::size_t i = 1; i <= count; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(count + 1);
    set.add(x, intercept + slope * x + 1e-4 * x * x);
  }
  return set;
}

ProfileStore one_entry_store() {
  ProfileStore store;
  store.put(make_entry("app-a", "dev-cpu", curve_samples(2.0, 0.1, 8),
                       curve_samples(0.5, 0.01, 8), 1000.0, {}));
  return store;
}

TEST(ProfileStore, EncodeDecodeRoundTripsBitIdentically) {
  const ProfileStore store = one_entry_store();
  const std::vector<std::uint8_t> bytes = store.encode();

  ProfileStore loaded;
  ASSERT_EQ(ProfileStore::decode(bytes, loaded), StoreLoadStatus::kOk);
  ASSERT_EQ(loaded.size(), 1u);

  const ProfileEntry& a = store.entries()[0];
  const ProfileEntry& b = loaded.entries()[0];
  EXPECT_EQ(a.app_kind, b.app_kind);
  EXPECT_EQ(a.device_kind, b.device_kind);
  EXPECT_EQ(a.total_grains, b.total_grains);
  EXPECT_EQ(a.stored_r2, b.stored_r2);  // exact: doubles are memcpy'd
  ASSERT_EQ(a.exec.size(), b.exec.size());
  for (std::size_t i = 0; i < a.exec.size(); ++i) {
    EXPECT_EQ(a.exec[i].x, b.exec[i].x);
    EXPECT_EQ(a.exec[i].time, b.exec[i].time);
  }
  EXPECT_EQ(a.exec_moments, b.exec_moments);
  EXPECT_EQ(a.transfer_moments, b.transfer_moments);
  EXPECT_EQ(a.exec_model.coefficients, b.exec_model.coefficients);
  EXPECT_EQ(a.transfer_model.slope, b.transfer_model.slope);

  // Re-encoding the decoded store reproduces the image byte for byte.
  EXPECT_EQ(loaded.encode(), bytes);
}

TEST(ProfileStore, WarmSeedRefitsIdenticallyAfterRoundTrip) {
  const ProfileStore store = one_entry_store();
  const std::vector<std::uint8_t> bytes = store.encode();
  ProfileStore loaded;
  ASSERT_EQ(ProfileStore::decode(bytes, loaded), StoreLoadStatus::kOk);

  // Seed two profile databases — one from the original store, one from the
  // decoded image — with matching grain totals, so the moment snapshots
  // restore bit-exactly, and compare the resulting fits.
  rt::ProfileDb original(1, 1000);
  rt::ProfileDb reloaded(1, 1000);
  original.seed(0, store.warm_profile("app-a", "dev-cpu"));
  reloaded.seed(0, loaded.warm_profile("app-a", "dev-cpu"));
  ASSERT_EQ(original.exec_samples(0).size(), 8u);
  ASSERT_EQ(reloaded.exec_samples(0).size(), 8u);

  const fit::PerfModel fit_a = original.fit_unit(0);
  const fit::PerfModel fit_b = reloaded.fit_unit(0);
  ASSERT_TRUE(fit_a.valid());
  ASSERT_EQ(fit_a.exec.coefficients.size(), fit_b.exec.coefficients.size());
  for (std::size_t i = 0; i < fit_a.exec.coefficients.size(); ++i) {
    EXPECT_NEAR(fit_a.exec.coefficients[i], fit_b.exec.coefficients[i],
                1e-12);
    EXPECT_EQ(fit_a.exec.coefficients[i], fit_b.exec.coefficients[i]);
  }
  EXPECT_EQ(fit_a.exec.r2, fit_b.exec.r2);
  EXPECT_EQ(fit_a.transfer.slope, fit_b.transfer.slope);
  EXPECT_EQ(fit_a.transfer.latency, fit_b.transfer.latency);
}

TEST(ProfileStore, SeedRescalesAcrossGrainTotals) {
  const ProfileStore store = one_entry_store();  // totals 1000
  rt::ProfileDb db(1, 2000);                     // new run: twice the grains
  db.seed(0, store.warm_profile("app-a", "dev-cpu"));
  // x' = x * 1000 / 2000: all fractions halve and stay in (0, 1].
  ASSERT_EQ(db.exec_samples(0).size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(db.exec_samples(0).items()[i].x,
                     store.entries()[0].exec[i].x * 0.5);
  }
  db.clear_unit(0);
  EXPECT_TRUE(db.exec_samples(0).empty());
  EXPECT_TRUE(db.transfer_samples(0).empty());
}

TEST(ProfileStore, RejectsTruncationAtEveryPrefixLength) {
  const std::vector<std::uint8_t> bytes = one_entry_store().encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{11},
                          std::size_t{19}, bytes.size() / 2,
                          bytes.size() - 1}) {
    ProfileStore out;
    const auto status = ProfileStore::decode(
        std::span<const std::uint8_t>(bytes.data(), cut), out);
    EXPECT_EQ(status, StoreLoadStatus::kTruncated) << "cut=" << cut;
    EXPECT_TRUE(out.empty());
  }
}

TEST(ProfileStore, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = one_entry_store().encode();
  bytes[0] ^= 0xff;
  ProfileStore out;
  EXPECT_EQ(ProfileStore::decode(bytes, out), StoreLoadStatus::kBadMagic);
  EXPECT_TRUE(out.empty());
}

TEST(ProfileStore, RejectsVersionSkew) {
  std::vector<std::uint8_t> bytes = one_entry_store().encode();
  bytes[8] += 1;  // bump the little-endian version field
  ProfileStore out;
  EXPECT_EQ(ProfileStore::decode(bytes, out), StoreLoadStatus::kVersionSkew);
  EXPECT_TRUE(out.empty());
}

TEST(ProfileStore, RejectsChecksumMismatch) {
  std::vector<std::uint8_t> bytes = one_entry_store().encode();
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  ProfileStore out;
  EXPECT_EQ(ProfileStore::decode(bytes, out), StoreLoadStatus::kBadChecksum);
  EXPECT_TRUE(out.empty());
}

TEST(ProfileStore, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = one_entry_store().encode();
  bytes.push_back(0x42);
  ProfileStore out;
  EXPECT_EQ(ProfileStore::decode(bytes, out), StoreLoadStatus::kCorrupt);
  EXPECT_TRUE(out.empty());
}

TEST(ProfileStore, LoadReportsMissingFile) {
  ProfileStore out;
  EXPECT_EQ(ProfileStore::load("/nonexistent/plbhec.store", out),
            StoreLoadStatus::kMissing);
}

TEST(ProfileStore, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "plbhec_store_roundtrip.bin";
  std::remove(path.c_str());
  const ProfileStore store = one_entry_store();
  ASSERT_TRUE(store.save(path));
  ProfileStore loaded;
  ASSERT_EQ(ProfileStore::load(path, loaded), StoreLoadStatus::kOk);
  EXPECT_EQ(loaded.encode(), store.encode());
  std::remove(path.c_str());
}

TEST(ProfileStore, PutReplacesByKeyAndCountsUpdates) {
  ProfileStore store = one_entry_store();
  EXPECT_EQ(store.entries()[0].updates, 1u);
  store.put(make_entry("app-a", "dev-cpu", curve_samples(3.0, 0.2, 10),
                       curve_samples(0.5, 0.01, 10), 500.0, {}));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.entries()[0].updates, 2u);
  EXPECT_EQ(store.entries()[0].total_grains, 500.0);
  store.put(make_entry("app-b", "dev-cpu", curve_samples(1.0, 0.1, 8),
                       curve_samples(0.5, 0.01, 8), 100.0, {}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.entries()[0].app_kind, "app-a");  // sorted by key
  EXPECT_EQ(store.entries()[1].app_kind, "app-b");
}

TEST(ProfileStore, TrimsToSampleCapWithConsistentMoments) {
  const std::size_t cap = ProfileStore::kMaxSamplesPerCurve;
  const fit::SampleSet big = curve_samples(2.0, 0.1, cap + 40);
  const ProfileEntry entry =
      make_entry("app", "dev", big, big, 1000.0, {});
  ASSERT_EQ(entry.exec.size(), cap);
  EXPECT_EQ(entry.exec_moments.n, cap);
  // The most recent samples are the ones kept.
  EXPECT_EQ(entry.exec.back().x, big.items().back().x);
  EXPECT_EQ(entry.exec.front().x, big.items()[40].x);
}

// ---- lease policy ---------------------------------------------------------

TEST(LeasePolicy, TargetsSumToUnitsAndRespectFloor) {
  const LeasePolicyOptions options;
  for (std::size_t n : {3u, 7u, 10u, 16u}) {
    for (std::size_t k = 1; k <= n; ++k) {
      std::vector<ActiveJobView> jobs;
      for (std::size_t i = 0; i < k; ++i) {
        jobs.push_back({i, static_cast<PriorityClass>(i % 3)});
      }
      const std::vector<std::size_t> targets = lease_targets(jobs, n, options);
      std::size_t sum = 0;
      for (std::size_t t : targets) {
        EXPECT_GE(t, n / k);  // the fairness floor, regardless of priority
        sum += t;
      }
      EXPECT_EQ(sum, n);
    }
  }
}

TEST(LeasePolicy, PriorityBiasesOnlyTheRemainder) {
  const LeasePolicyOptions options;
  const std::vector<ActiveJobView> jobs = {{0, PriorityClass::kLow},
                                           {1, PriorityClass::kHigh},
                                           {2, PriorityClass::kNormal}};
  const std::vector<std::size_t> targets = lease_targets(jobs, 11, options);
  // floor = 3 each; the 2 remainder units go to the heaviest weights.
  EXPECT_EQ(targets[0], 3u);
  EXPECT_GE(targets[1], 4u);
  EXPECT_EQ(targets[0] + targets[1] + targets[2], 11u);
  EXPECT_GE(targets[1], targets[2]);
  EXPECT_GE(targets[2], targets[0]);
}

TEST(LeasePolicy, DeterministicAcrossCalls) {
  const LeasePolicyOptions options;
  std::vector<ActiveJobView> jobs = {{0, PriorityClass::kNormal},
                                     {1, PriorityClass::kNormal},
                                     {2, PriorityClass::kNormal}};
  const auto a = lease_targets(jobs, 10, options);
  const auto b = lease_targets(jobs, 10, options);
  EXPECT_EQ(a, b);
}

TEST(LeasePolicy, StretchBound) {
  EXPECT_DOUBLE_EQ(stretch_bound(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(stretch_bound(10, 3), 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(stretch_bound(4, 4), 4.0);
}

// ---- JobManager -----------------------------------------------------------

JobSpec synthetic_job(std::string name, std::string kind,
                      PriorityClass priority, double arrival,
                      std::size_t grains, double flops = 2e7) {
  apps::SyntheticWorkload::Config config;
  config.grains = grains;
  config.flops_per_grain = flops;
  config.bytes_per_grain = 2048;
  return {std::move(name), std::move(kind), priority, arrival,
          [config] { return std::make_unique<apps::SyntheticWorkload>(config); }};
}

ServiceOptions quiet_options(std::uint64_t seed = 7) {
  ServiceOptions options;
  options.seed = seed;
  options.noise = sim::NoiseModel::none();
  return options;
}

TEST(JobManager, RunsMixedTraceToCompletion) {
  sim::SimCluster cluster(sim::scenario(2));
  JobManager manager(cluster, quiet_options());
  manager.submit(synthetic_job("a", "syn-a", PriorityClass::kNormal, 0.0,
                               20'000));
  manager.submit(synthetic_job("b", "syn-b", PriorityClass::kHigh, 0.01,
                               8'000));
  manager.submit(synthetic_job("c", "syn-a", PriorityClass::kLow, 0.02,
                               8'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.completion_order.size(), 3u);
  for (const JobOutcome& job : result.jobs) {
    EXPECT_TRUE(job.ok);
    EXPECT_GE(job.admitted, job.arrival);
    EXPECT_GT(job.finished, job.admitted);
    EXPECT_GT(job.tasks, 0u);
  }
  // Overlapping jobs must actually exercise the leasing protocol: the
  // first job's lease shrinks when the burst arrives and regrows after.
  EXPECT_GT(result.leases_granted, 0u);
  EXPECT_GT(result.leases_revoked, 0u);
  EXPECT_GT(result.scheduler_restarts, 0u);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
}

TEST(JobManager, ReplayIsDeterministic) {
  sim::SimCluster cluster(sim::scenario(2));
  const auto build = [&cluster] {
    auto manager = std::make_unique<JobManager>(cluster, quiet_options(11));
    manager->submit(synthetic_job("a", "syn-a", PriorityClass::kNormal, 0.0,
                                  15'000));
    manager->submit(synthetic_job("b", "syn-b", PriorityClass::kHigh, 0.005,
                                  6'000));
    manager->submit(synthetic_job("c", "syn-c", PriorityClass::kLow, 0.01,
                                  6'000));
    return manager;
  };
  const ServiceResult first = build()->run();
  const ServiceResult second = build()->run();
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(first.completion_order, second.completion_order);
  EXPECT_EQ(first.makespan, second.makespan);  // exact, not approximate
  EXPECT_EQ(first.leases_granted, second.leases_granted);
  EXPECT_EQ(first.leases_revoked, second.leases_revoked);
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(first.jobs[i].finished, second.jobs[i].finished);
    EXPECT_EQ(first.jobs[i].tasks, second.jobs[i].tasks);
  }
}

TEST(JobManager, AdmissionQueueHonorsPriorityThenFifo) {
  sim::SimCluster cluster(sim::scenario(1));
  ServiceOptions options = quiet_options();
  options.lease.max_active_jobs = 1;  // serialize: queue order observable
  JobManager manager(cluster, options);
  manager.submit(synthetic_job("first", "syn", PriorityClass::kLow, 0.0,
                               10'000));
  manager.submit(synthetic_job("normal", "syn", PriorityClass::kNormal, 0.001,
                               5'000));
  manager.submit(synthetic_job("high", "syn", PriorityClass::kHigh, 0.002,
                               5'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  // "first" is admitted on arrival; both others are queued by the time it
  // completes, and the high-priority one must leave the queue first.
  ASSERT_EQ(result.completion_order.size(), 3u);
  EXPECT_EQ(result.jobs[result.completion_order[0]].name, "first");
  EXPECT_EQ(result.jobs[result.completion_order[1]].name, "high");
  EXPECT_EQ(result.jobs[result.completion_order[2]].name, "normal");
  EXPECT_GT(result.jobs[2].queue_wait(), 0.0);
}

TEST(JobManager, WarmStartSkipsProbingBlocksAcrossRuns) {
  const std::string path = testing::TempDir() + "plbhec_warm_store.bin";
  std::remove(path.c_str());
  sim::SimCluster cluster(sim::scenario(2));

  const auto run_once = [&] {
    ServiceOptions options;
    options.seed = 21;
    options.store_path = path;
    JobManager manager(cluster, options);
    manager.submit({"mm", "matmul-1024", PriorityClass::kNormal, 0.0,
                    [] { return std::make_unique<apps::MatMulWorkload>(1024); }});
    return manager.run();
  };

  const ServiceResult cold = run_once();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.store_status, StoreLoadStatus::kMissing);
  EXPECT_EQ(cold.warm_hits, 0u);
  EXPECT_GT(cold.probe_blocks, 0u);

  const ServiceResult warm = run_once();
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.store_status, StoreLoadStatus::kOk);
  EXPECT_GT(warm.warm_hits, 0u);
  EXPECT_GT(warm.probe_blocks_saved, 0u);
  EXPECT_LT(warm.probe_blocks, cold.probe_blocks);
  std::remove(path.c_str());
}

TEST(JobManager, CorruptStoreFallsBackToColdStart) {
  const std::string path = testing::TempDir() + "plbhec_corrupt_store.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "definitely not a profile store image";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  obs::CounterRegistry counters;
  sim::SimCluster cluster(sim::scenario(1));
  ServiceOptions options = quiet_options();
  options.store_path = path;
  options.counters = &counters;
  JobManager manager(cluster, options);
  EXPECT_EQ(manager.store_status(), StoreLoadStatus::kBadMagic);
  EXPECT_EQ(counters.value("svc.store.load_failed"), 1u);
  EXPECT_TRUE(manager.store().empty());

  manager.submit(synthetic_job("job", "syn", PriorityClass::kNormal, 0.0,
                               5'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;  // cold start, no crash
  EXPECT_EQ(result.warm_hits, 0u);
  std::remove(path.c_str());
}

TEST(JobManager, LeaseFairnessBoundsStretchUnderBurstyLoad) {
  sim::SimCluster cluster(sim::scenario(2));
  const std::size_t n = cluster.size();

  // A low-priority long job with high-priority bursts arriving on top.
  const std::vector<JobSpec> trace = {
      synthetic_job("long", "syn-long", PriorityClass::kLow, 0.0, 40'000),
      synthetic_job("burst-0", "syn-s", PriorityClass::kHigh, 0.01, 6'000),
      synthetic_job("burst-1", "syn-s", PriorityClass::kHigh, 0.02, 6'000),
      synthetic_job("burst-2", "syn-s", PriorityClass::kHigh, 0.03, 6'000),
  };

  // Solo baselines: each job alone on the idle cluster, same seed.
  std::vector<double> solo(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    JobManager manager(cluster, quiet_options(5));
    manager.submit(trace[i]);
    const ServiceResult result = manager.run();
    ASSERT_TRUE(result.ok) << result.error;
    solo[i] = result.jobs[0].turnaround();
    ASSERT_GT(solo[i], 0.0);
  }

  JobManager manager(cluster, quiet_options(5));
  for (const JobSpec& spec : trace) manager.submit(spec);
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.leases_revoked, 0u);  // the protocol actually engaged

  // Every job — including the low-priority one — holds at least the
  // floor(n/k) fairness share while running, so its stretch against
  // running alone stays bounded. The capacity bound is stretch_bound(n, k)
  // with k concurrent jobs; scheduling overheads (probing, drain
  // boundaries, queueing) are covered by the slack factor.
  const double bound = stretch_bound(n, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double stretch = result.jobs[i].turnaround() / solo[i];
    EXPECT_LE(stretch, bound * 2.0)
        << result.jobs[i].name << " stretch " << stretch << " vs bound "
        << bound;
  }
}

}  // namespace
}  // namespace plbhec::svc
