// Tests for the fault-injection seam and the scenario grid: FaultScript
// ordering / validation / capability rejection, scripted faults on the
// simulated cluster (demotion, slow-down, link degradation, determinism),
// the scenario registries and cell-id round-trip, bit-deterministic
// run_cell replay with full grain accounting, and the seam contract
// itself: the same script object, injected into the simulator and played
// against a rig of two real worker daemons, produces the same
// scheduler-visible demotion sequence with zero lost grains on both sides.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "plbhec/apps/synthetic.hpp"
#include "plbhec/chaos/fault.hpp"
#include "plbhec/chaos/net_target.hpp"
#include "plbhec/chaos/scenario.hpp"
#include "plbhec/chaos/sim_target.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/net/remote_unit.hpp"
#include "plbhec/net/workerd.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/thread_engine.hpp"

namespace plbhec::chaos {
namespace {

// ---- FaultScript ----------------------------------------------------------

TEST(Script, FluentBuildersSortStablyAndReportDemotions) {
  FaultScript script;
  script.kill(3, 0.5)
      .slow_down(1, 0.1, 0.25)
      .freeze(2, 0.5)  // same time as the kill: insertion order must hold
      .degrade_link(0, 0.2, 1e-3, 0.5)
      .partition(4, 0.9);

  const auto sorted = script.sorted();
  ASSERT_EQ(sorted.size(), 5u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kSlowDown);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(sorted[2].unit, 3u);  // kill inserted before the tied freeze
  EXPECT_EQ(sorted[3].unit, 2u);
  EXPECT_EQ(sorted[4].kind, FaultKind::kPartition);

  EXPECT_EQ(script.demoted_units(), (std::vector<std::size_t>{3, 2, 4}));
  EXPECT_EQ(script.max_unit(), 4u);
  EXPECT_FALSE(script.empty());
  EXPECT_TRUE(FaultScript{}.empty());
}

TEST(Script, DemotesClassifiesKinds) {
  EXPECT_TRUE(demotes(FaultKind::kKill));
  EXPECT_TRUE(demotes(FaultKind::kFreeze));
  EXPECT_TRUE(demotes(FaultKind::kPartition));
  EXPECT_FALSE(demotes(FaultKind::kSlowDown));
  EXPECT_FALSE(demotes(FaultKind::kLinkDegrade));
}

TEST(Script, InjectRejectsOutOfRangeUnitsDeliveringNothing) {
  sim::SimCluster cluster = make_cluster("u2-mild", 1);
  SimFaultTarget target(cluster);
  FaultScript script;
  script.kill(0, 0.1).kill(5, 0.2);  // unit 5 beyond the 2-unit cluster
  EXPECT_FALSE(validate(script, target));
  EXPECT_FALSE(inject(script, target));
}

// ---- Scripted faults on the simulated cluster -----------------------------

/// Delegating scheduler that records the order in which the engine reports
/// permanent unit failures — the scheduler-visible demotion sequence the
/// seam contract is stated in.
class RecordingScheduler final : public rt::Scheduler {
 public:
  explicit RecordingScheduler(std::unique_ptr<rt::Scheduler> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override {
    inner_->start(units, work);
  }
  [[nodiscard]] std::size_t next_block(rt::UnitId unit,
                                       double now) override {
    return inner_->next_block(unit, now);
  }
  void on_complete(const rt::TaskObservation& obs) override {
    inner_->on_complete(obs);
  }
  void on_barrier(double now) override { inner_->on_barrier(now); }
  void on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                      double now) override {
    failed_order_.push_back(unit);
    inner_->on_unit_failed(unit, lost_grains, now);
  }

  [[nodiscard]] const std::vector<rt::UnitId>& failed_order() const {
    return failed_order_;
  }

 private:
  std::unique_ptr<rt::Scheduler> inner_;
  std::vector<rt::UnitId> failed_order_;
};

rt::RunResult run_sim(sim::SimCluster& cluster, rt::Workload& workload,
                      rt::Scheduler& scheduler, std::uint64_t seed = 7) {
  rt::EngineOptions opts;
  opts.seed = seed;
  opts.record_trace = false;
  rt::SimEngine engine(cluster, opts);
  return engine.run(workload, scheduler);
}

TEST(SimChaos, KillScriptDemotesScriptedUnitsAndConservesGrains) {
  sim::SimCluster cluster = make_cluster("u4-mild", 3);
  const auto workload = make_workload("regular", cluster);

  FaultScript script;
  script.kill(1, 0.2).freeze(3, 0.45);
  SimFaultTarget target(cluster);
  ASSERT_TRUE(inject(script, target));

  RecordingScheduler scheduler(std::make_unique<core::PlbHecScheduler>());
  const rt::RunResult r = run_sim(cluster, *workload, scheduler);
  ASSERT_TRUE(r.ok) << r.error;
  // Zero lost grains: every grain completed despite two mid-run demotions
  // (the in-flight ones were requeued, not dropped).
  EXPECT_EQ(r.grains_completed, workload->total_grains());
  EXPECT_EQ(scheduler.failed_order(),
            (std::vector<rt::UnitId>{1, 3}));
  EXPECT_TRUE(r.unit_stats[1].failed);
  EXPECT_TRUE(r.unit_stats[3].failed);
  EXPECT_FALSE(r.unit_stats[0].failed);
}

TEST(SimChaos, SlowdownStretchesMakespanWithoutDemotion) {
  sim::SimCluster clean = make_cluster("u2-mild", 5);
  sim::SimCluster faulted = make_cluster("u2-mild", 5);
  const auto workload_clean = make_workload("regular", clean);
  const auto workload_faulted = make_workload("regular", faulted);

  FaultScript script;
  script.slow_down(0, 0.1, 0.2).slow_down(1, 0.1, 0.2);
  SimFaultTarget target(faulted);
  ASSERT_TRUE(inject(script, target));

  core::PlbHecScheduler s1;
  core::PlbHecScheduler s2;
  const rt::RunResult base = run_sim(clean, *workload_clean, s1);
  const rt::RunResult slow = run_sim(faulted, *workload_faulted, s2);
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_EQ(slow.grains_completed, workload_faulted->total_grains());
  // Both units at 1/5 speed from 10% in: the run must take visibly longer,
  // but nothing may be demoted (QoS degradation, not failure).
  EXPECT_GT(slow.makespan, 1.5 * base.makespan);
  for (const auto& stats : slow.unit_stats) EXPECT_FALSE(stats.failed);
}

TEST(SimChaos, LinkDegradeIsAcceptedBySimAndKeepsGrainsAccounted) {
  sim::SimCluster cluster = make_cluster("u4-extreme", 9);
  const auto workload = make_workload("mixed", cluster);

  FaultScript script;
  for (std::size_t i = 1; i < cluster.size(); i += 2)
    script.degrade_link(i, 0.2, 5e-3, 0.1);
  SimFaultTarget target(cluster);
  EXPECT_TRUE(target.supports(FaultKind::kLinkDegrade));
  ASSERT_TRUE(inject(script, target));

  core::PlbHecScheduler plb;
  const rt::RunResult r = run_sim(cluster, *workload, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.grains_completed, workload->total_grains());
  for (const auto& stats : r.unit_stats) EXPECT_FALSE(stats.failed);
}

TEST(SimChaos, ScriptedRunReplaysBitIdentically) {
  const auto run_once = [] {
    sim::SimCluster cluster = make_cluster("u4-extreme", 11);
    const auto workload = make_workload("irregular", cluster);
    FaultScript script;
    script.kill(2, 0.3).slow_down(0, 0.1, 0.5);
    SimFaultTarget target(cluster);
    EXPECT_TRUE(inject(script, target));
    core::PlbHecScheduler plb;
    return run_sim(cluster, *workload, plb, 123);
  };
  const rt::RunResult a = run_once();
  const rt::RunResult b = run_once();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: same timeline, same noise
  EXPECT_EQ(a.grains_completed, b.grains_completed);
  EXPECT_EQ(a.grains_requeued, b.grains_requeued);
  EXPECT_EQ(a.barriers, b.barriers);
}

// ---- Scenario grid --------------------------------------------------------

TEST(Scenario, CellIdRoundTripsForEveryGridCell) {
  for (const ScenarioCell& cell : smoke_grid()) {
    const auto parsed = parse_cell_id(cell.id());
    ASSERT_TRUE(parsed.has_value()) << cell.id();
    EXPECT_EQ(*parsed, cell);
  }
  for (const char* bad :
       {"", "u4-mild", "u4-mild/regular", "u4-mild/regular/none",
        "u3-mild/regular/none@1", "u4-mild/bogus/none@1",
        "u4-mild/regular/bogus@1", "u4-mild/regular/none@",
        "u4-mild/regular/none@x", "u4-mild/regular/none@1 "}) {
    EXPECT_FALSE(parse_cell_id(bad).has_value()) << bad;
  }
}

TEST(Scenario, GridsCoverEveryAxisValue) {
  const auto covers = [](const std::vector<ScenarioCell>& cells) {
    std::set<std::string> shapes;
    std::set<std::string> workloads;
    std::set<std::string> faults;
    for (const auto& c : cells) {
      shapes.insert(c.shape);
      workloads.insert(c.workload);
      faults.insert(c.fault);
    }
    return shapes.size() == shape_names().size() &&
           workloads.size() == workload_names().size() &&
           faults.size() == fault_names().size();
  };
  EXPECT_TRUE(covers(smoke_grid()));
  EXPECT_TRUE(covers(full_grid(1)));
  EXPECT_EQ(full_grid(2).size(), shape_names().size() *
                                     workload_names().size() *
                                     fault_names().size() * 2);
}

TEST(Scenario, FaultScriptsNeverDemoteTheWholeCluster) {
  for (const std::string& fault : fault_names()) {
    for (const std::size_t units : {2u, 4u, 16u, 256u}) {
      const FaultScript script = make_fault_script(fault, units, 1.0);
      const auto demoted = script.demoted_units();
      EXPECT_LT(demoted.size(), units) << fault << " units=" << units;
      for (const std::size_t unit : demoted)
        EXPECT_LT(unit, units) << fault;
      for (const auto& event : script.events)
        EXPECT_LT(event.unit, units) << fault;
    }
  }
}

TEST(Scenario, RunCellReplaysBitIdenticallyAndAccountsEveryGrain) {
  const auto cell = parse_cell_id("u2-extreme/irregular/kill1@1");
  ASSERT_TRUE(cell.has_value());
  const CellResult a = run_cell(*cell);
  const CellResult b = run_cell(*cell);

  // Full grain accounting under a kill: every scheduler finished every
  // grain, and the scripted victim was demoted in every run.
  EXPECT_TRUE(a.grains_accounted);
  ASSERT_EQ(a.outcomes.size(), scheduler_names().size());
  for (const auto& outcome : a.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.scheduler << ": " << outcome.error;
    EXPECT_EQ(outcome.grains_completed, a.total_grains) << outcome.scheduler;
    EXPECT_EQ(outcome.lost_grains, 0u) << outcome.scheduler;
    EXPECT_EQ(outcome.failed_units, 1u) << outcome.scheduler;
  }

  // Bit-deterministic replay from the cell id alone: the contract the
  // bench's replay_identical flag and every CI replay command rely on.
  ASSERT_EQ(b.outcomes.size(), a.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].makespan, b.outcomes[i].makespan)
        << a.outcomes[i].scheduler;
    EXPECT_EQ(a.outcomes[i].grains_requeued, b.outcomes[i].grains_requeued);
    EXPECT_EQ(a.outcomes[i].barriers, b.outcomes[i].barriers);
  }
  EXPECT_EQ(a.plb_vs_best, b.plb_vs_best);
  EXPECT_EQ(a.plb_win, b.plb_win);
  EXPECT_EQ(a.best_baseline, b.best_baseline);
  EXPECT_EQ(a.total_grains, b.total_grains);
}

// ---- The seam: real worker daemons ----------------------------------------

TEST(NetChaos, SlowdownsCompoundThroughTheSeam) {
  net::WorkerDaemon daemon({0, "wd", 1.0});
  NetFaultTarget target({&daemon});
  FaultScript script;
  script.slow_down(0, 0.0, 0.5).slow_down(0, 0.0, 0.5);
  ASSERT_TRUE(inject(script, target));
  // Two 0.5x QoS events stack: the daemon now runs at a quarter speed,
  // expressed as a 4x stretch.
  EXPECT_DOUBLE_EQ(daemon.slowdown(), 4.0);
}

TEST(NetChaos, LinkDegradeIsRejectedUpFrontByTheRealRig) {
  net::WorkerDaemon daemon({0, "wd", 1.0});
  NetFaultTarget target({&daemon});
  EXPECT_FALSE(target.supports(FaultKind::kLinkDegrade));
  FaultScript script;
  script.slow_down(0, 0.0, 0.5).degrade_link(0, 0.1, 1e-3, 0.5);
  EXPECT_FALSE(validate(script, target));
  EXPECT_FALSE(inject(script, target));
  // All-or-nothing: the supported slow-down was not delivered either.
  EXPECT_DOUBLE_EQ(daemon.slowdown(), 1.0);
}

TEST(NetChaos, ScriptPlayerDropsEverythingWhenTheRunNeverArms) {
  net::WorkerDaemon daemon({0, "wd", 1.0});
  NetFaultTarget target({&daemon});
  FaultScript script;
  script.kill(0, 0.0).slow_down(0, 0.01, 0.5);
  ScriptPlayer::Options options;
  options.armed = [] { return false; };  // the run "finished" instantly
  options.arm_timeout = std::chrono::milliseconds(50);
  ScriptPlayer player(std::move(script), target, std::move(options));
  player.start();
  player.join();
  EXPECT_EQ(player.delivered_events(), 0u);
  EXPECT_EQ(player.dropped_events(), 2u);
  EXPECT_DOUBLE_EQ(daemon.slowdown(), 1.0);
}

// Tight liveness budget so heartbeat demotion of the frozen daemon is
// fast; mirrors the hand-written failover tests in test_net.cpp.
net::RemoteUnitOptions chaos_rig_options(std::uint16_t port) {
  net::RemoteUnitOptions ro;
  ro.port = port;
  ro.heartbeat_interval_seconds = 0.02;
  ro.max_missed_heartbeats = 3;
  ro.max_reconnect_attempts = 2;
  ro.backoff_initial_seconds = 0.01;
  ro.backoff_max_seconds = 0.05;
  return ro;
}

// Generous heartbeat budget for the unit whose fault is a kill: crash
// detection rides the immediate I/O error, so the wide heartbeat window
// costs nothing there, while it keeps a starved-but-healthy daemon from
// being falsely demoted *before* its scripted kill lands (which would
// scramble the demotion order under a parallel ctest run).
net::RemoteUnitOptions steady_rig_options(std::uint16_t port) {
  net::RemoteUnitOptions ro = chaos_rig_options(port);
  ro.heartbeat_interval_seconds = 0.2;
  ro.max_missed_heartbeats = 15;
  return ro;
}

TEST(NetChaos, SameScriptProducesSameDemotionSequenceOnBothSidesOfSeam) {
  // One script, written once: freeze unit 1 early, kill unit 2 much
  // later (the wide gap keeps the two demotions ordered even when a
  // loaded CI machine stretches the heartbeat-timeout detection path).
  // The seam contract (fault.hpp): the scheduler-visible outcome — the
  // demotion sequence and zero lost grains — is identical whether the
  // script lands on the simulated cluster's virtual timeline or on real
  // worker daemons via the wall-clock player.
  FaultScript script;
  script.freeze(1, 0.05).kill(2, 0.6);

  // Sim side: a 3-unit cluster, workload weak-scaled to a >= 1 s virtual
  // horizon, so both scripted times land mid-run.
  std::vector<rt::UnitId> sim_order;
  {
    sim::SimCluster cluster = make_cluster("u3-mild", 17);
    ASSERT_EQ(cluster.size(), 3u);
    const auto workload = make_workload("regular", cluster);
    SimFaultTarget target(cluster);
    ASSERT_TRUE(inject(script, target));
    RecordingScheduler scheduler(std::make_unique<core::PlbHecScheduler>());
    const rt::RunResult r = run_sim(cluster, *workload, scheduler);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.grains_completed, workload->total_grains());
    ASSERT_GT(r.makespan, 0.6);  // both events landed before the end
    sim_order = scheduler.failed_order();
  }

  // Real side: unit 0 is coordinator-local, units 1 and 2 are daemons.
  // The player arms once both daemons have served a block (the run is
  // demonstrably in flight on every scripted unit), then replays the
  // same script in wall time.
  std::vector<rt::UnitId> net_order;
  {
    net::WorkerDaemon d1({0, "wd1", 1.0});
    net::WorkerDaemon d2({0, "wd2", 1.0});
    NetFaultTarget target({nullptr, &d1, &d2});

    std::vector<std::unique_ptr<rt::ExecUnit>> units;
    units.push_back(std::make_unique<rt::LocalExecUnit>(
        rt::LocalExecUnit::Options{"local0", 1.0, true}));
    units.push_back(
        std::make_unique<net::RemoteUnit>(chaos_rig_options(d1.port())));
    units.push_back(
        std::make_unique<net::RemoteUnit>(steady_rig_options(d2.port())));
    rt::ThreadEngine engine(rt::ThreadEngineOptions{}, std::move(units));

    // Sized to keep the run in flight well past the last scripted event
    // (~1 s+ of work on three units) so the kill cannot race run
    // completion even on a fast machine.
    apps::SyntheticWorkload workload(apps::SyntheticWorkload::Config{
        40'000, 1e6, 64.0, 16.0, 2.0, 0.97, 0.5, 0.5, 6'000});

    ScriptPlayer::Options options;
    options.armed = [&] {
      return d1.blocks_served() > 0 && d2.blocks_served() > 0;
    };
    ScriptPlayer player(script, target, std::move(options));
    player.start();

    RecordingScheduler scheduler(std::make_unique<core::PlbHecScheduler>());
    const rt::RunResult r = engine.run(workload, scheduler);
    player.join();
    d1.unfreeze();

    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(player.delivered_events(), script.events.size());
    EXPECT_EQ(player.dropped_events(), 0u);
    // Zero lost grains on the real rig too: every grain executed exactly
    // once despite the hang and the crash.
    EXPECT_EQ(workload.executed_grains(), 40'000u);
    EXPECT_TRUE(r.unit_stats[1].failed);
    EXPECT_TRUE(r.unit_stats[2].failed);
    net_order = scheduler.failed_order();
    d1.stop();
    d2.stop();
  }

  // The seam contract: same demotion sequence, and it is exactly the
  // script's own demotion order.
  EXPECT_EQ(sim_order, script.demoted_units());
  EXPECT_EQ(net_order, sim_order);
}

}  // namespace
}  // namespace plbhec::chaos
