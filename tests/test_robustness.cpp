// Robustness sweeps: every scheduler must complete with exact grain
// accounting across measurement-noise levels and failure times; the
// interior-point solver is exercised on classic constrained test problems
// with known optima (Hock-Schittkowski style).

#include <gtest/gtest.h>

#include <memory>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/solver/interior_point.hpp"

namespace plbhec {
namespace {

// ---- Noise sweep -----------------------------------------------------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, AllSchedulersCompleteUnderNoise) {
  const double sigma = GetParam();
  for (int which = 0; which < 4; ++which) {
    apps::MatMulWorkload w(8192);
    sim::SimCluster cluster(sim::scenario(2));
    rt::EngineOptions opts;
    opts.noise.exec_sigma = sigma;
    opts.noise.transfer_sigma = sigma;
    opts.seed = 11;
    rt::SimEngine engine(cluster, opts);
    std::unique_ptr<rt::Scheduler> sched;
    switch (which) {
      case 0:
        sched = std::make_unique<core::PlbHecScheduler>();
        break;
      case 1:
        sched = std::make_unique<baselines::GreedyScheduler>();
        break;
      case 2:
        sched = std::make_unique<baselines::HdssScheduler>();
        break;
      default:
        sched = std::make_unique<baselines::AcostaScheduler>();
    }
    const rt::RunResult r = engine.run(w, *sched);
    ASSERT_TRUE(r.ok) << sched->name() << " sigma=" << sigma << ": "
                      << r.error;
    std::size_t done = 0;
    for (const auto& s : r.unit_stats) done += s.grains;
    EXPECT_EQ(done, w.total_grains()) << sched->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.15, 0.30));

TEST(NoiseSweep, HeavyNoiseInflatesPlbSolveCount) {
  // More noise -> worse fits -> more threshold activity; the scheduler
  // must stay live (bounded solves, full completion).
  apps::MatMulWorkload w(8192);
  sim::SimCluster cluster(sim::scenario(2));
  rt::EngineOptions opts;
  opts.noise.exec_sigma = 0.30;
  opts.noise.transfer_sigma = 0.30;
  rt::SimEngine engine(cluster, opts);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LT(plb.stats().solves, 50u);  // no rebalance thrashing
}

// ---- Failure-time sweep -----------------------------------------------------

class FailureTiming : public ::testing::TestWithParam<double> {};

TEST_P(FailureTiming, PlbRecoversWheneverTheGpuDies) {
  const double when = GetParam();
  apps::SyntheticWorkload::Config cfg;
  cfg.grains = 20'000;
  cfg.flops_per_grain = 5e7;
  cfg.bytes_per_grain = 2048;
  cfg.gpu_threads_per_grain = 512;
  apps::SyntheticWorkload probe_w(cfg);

  sim::SimCluster cluster(sim::scenario(2));
  rt::SimEngine probe_engine(cluster, {});
  core::PlbHecScheduler probe;
  const rt::RunResult base = probe_engine.run(probe_w, probe);
  ASSERT_TRUE(base.ok);

  sim::SimCluster faulty(sim::scenario(2));
  faulty.fail_unit(1, base.makespan * when);  // A.gpu0
  rt::SimEngine engine(faulty, {});
  apps::SyntheticWorkload w(cfg);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << "fail at " << when << ": " << r.error;
  EXPECT_TRUE(r.unit_stats[1].failed);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
  EXPECT_GE(r.makespan, 0.9 * base.makespan);  // losing a GPU cannot be free
}

INSTANTIATE_TEST_SUITE_P(When, FailureTiming,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6, 0.85));

// ---- Classic constrained problems ------------------------------------------

/// Hock-Schittkowski #35 (Beale): min 9 - 8x1 - 6x2 - 4x3 + 2x1^2 + 2x2^2
/// + x3^2 + 2x1x2 + 2x1x3, s.t. x1+x2+2x3 <= 3 (as equality with slack via
/// bound: we test the equality-active variant x1+x2+2x3 = 3), x >= 0.
/// With the constraint active the optimum is x = (4/3, 7/9, 4/9).
class Hs35Equality final : public solver::NlpProblem {
 public:
  std::size_t num_vars() const override { return 3; }
  std::size_t num_constraints() const override { return 1; }
  double objective(std::span<const double> x) const override {
    return 9 - 8 * x[0] - 6 * x[1] - 4 * x[2] + 2 * x[0] * x[0] +
           2 * x[1] * x[1] + x[2] * x[2] + 2 * x[0] * x[1] +
           2 * x[0] * x[2];
  }
  void gradient(std::span<const double> x, std::span<double> g) const override {
    g[0] = -8 + 4 * x[0] + 2 * x[1] + 2 * x[2];
    g[1] = -6 + 4 * x[1] + 2 * x[0];
    g[2] = -4 + 2 * x[2] + 2 * x[0];
  }
  void constraints(std::span<const double> x,
                   std::span<double> c) const override {
    c[0] = x[0] + x[1] + 2 * x[2] - 3.0;
  }
  void jacobian(std::span<const double>, linalg::Matrix& j) const override {
    j(0, 0) = 1.0;
    j(0, 1) = 1.0;
    j(0, 2) = 2.0;
  }
  void lagrangian_hessian(std::span<const double>, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    h(0, 0) = 4 * obj;
    h(1, 1) = 4 * obj;
    h(2, 2) = 2 * obj;
    h(0, 1) = h(1, 0) = 2 * obj;
    h(0, 2) = h(2, 0) = 2 * obj;
    h(1, 2) = h(2, 1) = 0.0;
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    for (auto& v : lo) v = 0.0;
    for (auto& v : hi) v = solver::kInfinity;
  }
};

TEST(InteriorPointClassics, Hs35EqualityVariant) {
  Hs35Equality prob;
  std::vector<double> x0{0.5, 0.5, 0.5};
  const solver::IpResult r = solver::solve_interior_point(prob, x0);
  ASSERT_TRUE(r.ok()) << solver::to_string(r.status);
  EXPECT_NEAR(r.x[0], 4.0 / 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], 7.0 / 9.0, 1e-4);
  EXPECT_NEAR(r.x[2], 4.0 / 9.0, 1e-4);
  EXPECT_NEAR(r.objective, 1.0 / 9.0, 1e-5);
}

/// Entropy-like barrier-friendly problem: min sum x_i ln x_i on the
/// simplex; optimum is the uniform distribution.
class MaxEntropy final : public solver::NlpProblem {
 public:
  explicit MaxEntropy(std::size_t n) : n_(n) {}
  std::size_t num_vars() const override { return n_; }
  std::size_t num_constraints() const override { return 1; }
  double objective(std::span<const double> x) const override {
    double s = 0.0;
    for (double v : x) s += v * std::log(std::max(v, 1e-300));
    return s;
  }
  void gradient(std::span<const double> x, std::span<double> g) const override {
    for (std::size_t i = 0; i < n_; ++i)
      g[i] = std::log(std::max(x[i], 1e-300)) + 1.0;
  }
  void constraints(std::span<const double> x,
                   std::span<double> c) const override {
    double s = 0.0;
    for (double v : x) s += v;
    c[0] = s - 1.0;
  }
  void jacobian(std::span<const double>, linalg::Matrix& j) const override {
    for (std::size_t i = 0; i < n_; ++i) j(0, i) = 1.0;
  }
  void lagrangian_hessian(std::span<const double> x, double obj,
                          std::span<const double>,
                          linalg::Matrix& h) const override {
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t k = 0; k < n_; ++k) h(i, k) = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
      h(i, i) = obj / std::max(x[i], 1e-300);
  }
  void bounds(std::span<double> lo, std::span<double> hi) const override {
    for (auto& v : lo) v = 0.0;
    for (auto& v : hi) v = 1.0;
  }

 private:
  std::size_t n_;
};

class MaxEntropySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaxEntropySizes, UniformIsRecovered) {
  const std::size_t n = GetParam();
  MaxEntropy prob(n);
  // Deliberately skewed start.
  std::vector<double> x0(n, 0.1 / static_cast<double>(n));
  x0[0] = 1.0 - 0.1 * (static_cast<double>(n) - 1.0) / static_cast<double>(n);
  const solver::IpResult r = solver::solve_interior_point(prob, x0);
  ASSERT_TRUE(r.ok()) << solver::to_string(r.status);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.x[i], 1.0 / static_cast<double>(n), 1e-4) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaxEntropySizes,
                         ::testing::Values(2, 3, 5, 10, 20));

}  // namespace
}  // namespace plbhec
