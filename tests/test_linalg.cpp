// Tests for the dense linear algebra kernels: Matrix ops, LU, QR least
// squares, Cholesky and the blocked GEMM, including property-style sweeps
// over sizes with randomized well-conditioned systems.

#include <gtest/gtest.h>

#include <cmath>

#include "plbhec/common/rng.hpp"
#include "plbhec/linalg/blas.hpp"
#include "plbhec/linalg/cholesky.hpp"
#include "plbhec/linalg/lu.hpp"
#include "plbhec/linalg/matrix.hpp"
#include "plbhec/linalg/qr.hpp"

namespace plbhec::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

/// Diagonally dominant => invertible.
Matrix random_dd_matrix(std::size_t n, Rng& rng) {
  Matrix m = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);
  return m;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.frobenius_norm(), std::sqrt(3.0));
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatVec) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = matvec(m, std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecTransposed) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = matvec_transposed(m, std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, MatMulAgainstIdentity) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix c = matmul(a, Matrix::identity(4));
  EXPECT_EQ(c, a);
}

TEST(Matrix, VectorHelpers) {
  std::vector<double> a{3.0, 4.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
  scale(a, 0.5);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

class LuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizes, SolveRecoversKnownSolution) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const Matrix a = random_dd_matrix(n, rng);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  const Vector b = matvec(a, x_true);
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x = lu->solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

TEST(Lu, SingularReturnsNullopt) {
  Matrix m{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(Lu::factor(m).has_value());
}

TEST(Lu, Determinant) {
  Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  auto lu = Lu::factor(m);
  ASSERT_TRUE(lu);
  EXPECT_NEAR(lu->determinant(), 6.0, 1e-12);
}

TEST(Lu, DeterminantWithPermutationSign) {
  Matrix m{{0.0, 1.0}, {1.0, 0.0}};  // det = -1
  auto lu = Lu::factor(m);
  ASSERT_TRUE(lu);
  EXPECT_NEAR(lu->determinant(), -1.0, 1e-12);
}

TEST(Lu, MatrixSolve) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu);
  const Matrix x = lu->solve(b);
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 3.0);
}

TEST(Lu, OneShotSolveHelper) {
  Matrix a{{3.0}};
  auto x = solve(a, std::vector<double>{6.0});
  ASSERT_TRUE(x);
  EXPECT_DOUBLE_EQ((*x)[0], 2.0);
}

TEST(Lu, ConditionEstimateOrdersMatrices) {
  const double k_id = condition_estimate(Matrix::identity(4));
  Matrix bad{{1.0, 0.0}, {0.0, 1e-8}};
  EXPECT_LT(k_id, condition_estimate(bad));
}

TEST(Lu, ConditionEstimateInfiniteForSingular) {
  Matrix m{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(std::isinf(condition_estimate(m)));
}

class QrShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, LeastSquaresMatchesNormalEquations) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const Matrix a = random_matrix(m, n, rng);
  Vector b(m);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  auto sol = least_squares(a, b);
  ASSERT_TRUE(sol);

  // Residual must be orthogonal to the column space: A^T (A c - b) = 0.
  Vector r = matvec(a, sol->coefficients);
  for (std::size_t i = 0; i < m; ++i) r[i] -= b[i];
  const Vector atr = matvec_transposed(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 1},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{20, 5},
                      std::pair<std::size_t, std::size_t>{50, 8}));

TEST(Qr, ExactSystemSolvedExactly) {
  Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  // y = 2 + 0.5 x at x = 1,2,3
  Vector b{2.5, 3.0, 3.5};
  auto sol = least_squares(a, b);
  ASSERT_TRUE(sol);
  EXPECT_NEAR(sol->coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(sol->coefficients[1], 0.5, 1e-10);
  EXPECT_NEAR(sol->residual_norm, 0.0, 1e-10);
}

TEST(Qr, RankDeficientGetsZeroCoefficient) {
  // Second column is a duplicate of the first.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  Vector b{1.0, 2.0, 3.0};
  auto sol = least_squares(a, b);
  ASSERT_TRUE(sol);
  // Fit must still be exact even with the redundant column.
  const Vector pred = matvec(a, sol->coefficients);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pred[i], b[i], 1e-9);
}

TEST(Qr, ZeroMatrixReturnsNullopt) {
  Matrix a(3, 2, 0.0);
  Vector b{1.0, 1.0, 1.0};
  EXPECT_FALSE(least_squares(a, b).has_value());
}

TEST(Qr, UnderdeterminedReturnsNullopt) {
  Matrix a(1, 2, 1.0);
  Vector b{1.0};
  EXPECT_FALSE(least_squares(a, b).has_value());
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto ch = Cholesky::factor(a);
  ASSERT_TRUE(ch);
  const Vector x = ch->solve(std::vector<double>{8.0, 7.0});
  // Verify A x = b.
  const Vector b = matvec(a, x);
  EXPECT_NEAR(b[0], 8.0, 1e-12);
  EXPECT_NEAR(b[1], 7.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, AcceptsIdentity) {
  EXPECT_TRUE(is_positive_definite(Matrix::identity(5)));
}

class GemmSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmSizes, MatchesNaiveReference) {
  const std::size_t n = GetParam();
  Rng rng(n + 77);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const Matrix expected = matmul(a, b);

  std::vector<double> c(n * n, 0.0);
  blas::gemm(n, n, n, {a.data(), n * n}, {b.data(), n * n}, c);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(c[i * n + j], expected(i, j), 1e-9) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizes,
                         ::testing::Values(1, 2, 7, 16, 33, 64, 100));

TEST(Gemm, ParallelMatchesSerial) {
  const std::size_t n = 96;
  Rng rng(3);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  std::vector<double> c1(n * n, 0.0), c2(n * n, 0.0);
  blas::gemm(n, n, n, {a.data(), n * n}, {b.data(), n * n}, c1);
  blas::gemm_parallel(n, n, n, {a.data(), n * n}, {b.data(), n * n}, c2, 4);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(c1[i], c2[i]);
}

TEST(Gemm, AccumulatesIntoC) {
  std::vector<double> a{1.0}, b{2.0}, c{10.0};
  blas::gemm(1, 1, 1, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 12.0);
}

TEST(Gemm, RectangularShapes) {
  // (2x3) * (3x1)
  std::vector<double> a{1, 2, 3, 4, 5, 6};
  std::vector<double> b{1, 1, 1};
  std::vector<double> c(2, 0.0);
  blas::gemm(2, 1, 3, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  EXPECT_DOUBLE_EQ(c[1], 15.0);
}

}  // namespace
}  // namespace plbhec::linalg
