// Integration tests: every scheduler completes every application on every
// cluster scenario, with correct grain accounting; metrics derive sane
// values; the paper's headline qualitative results hold at reduced scale
// (PLB-HeC beats greedy on large heterogeneous runs; block distributions
// favor GPUs; rebalancing handles QoS drift).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/baselines/static_profile.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/thread_engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace plbhec {
namespace {

std::unique_ptr<rt::Workload> make_workload(const std::string& app) {
  if (app == "matmul") return std::make_unique<apps::MatMulWorkload>(8192);
  if (app == "blackscholes")
    return std::make_unique<apps::BlackScholesWorkload>(
        apps::BlackScholesWorkload::paper_instance(50'000));
  return std::make_unique<apps::GrnWorkload>(
      apps::GrnWorkload::paper_instance(20'000));
}

std::unique_ptr<rt::Scheduler> make_scheduler(const std::string& name) {
  if (name == "plb-hec") return std::make_unique<core::PlbHecScheduler>();
  if (name == "greedy") return std::make_unique<baselines::GreedyScheduler>();
  if (name == "hdss") return std::make_unique<baselines::HdssScheduler>();
  return std::make_unique<baselines::AcostaScheduler>();
}

using Combo = std::tuple<std::string, std::string, std::size_t>;

class EveryCombination : public ::testing::TestWithParam<Combo> {};

TEST_P(EveryCombination, CompletesWithExactGrainAccounting) {
  const auto& [app, sched_name, machines] = GetParam();
  auto workload = make_workload(app);
  auto scheduler = make_scheduler(sched_name);
  sim::SimCluster cluster(sim::scenario(machines));
  rt::SimEngine engine(cluster, {});
  const rt::RunResult r = engine.run(*workload, *scheduler);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.makespan, 0.0);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, workload->total_grains());

  const auto shares = metrics::processed_shares(r);
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0, 1e-9);
  for (double idle : metrics::idle_percent(r)) {
    EXPECT_GE(idle, 0.0);
    EXPECT_LE(idle, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsSchedulersMachines, EveryCombination,
    ::testing::Combine(::testing::Values("matmul", "blackscholes", "grn"),
                       ::testing::Values("plb-hec", "greedy", "hdss",
                                         "acosta"),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4})),
    [](const auto& info) {
      std::string app = std::get<0>(info.param);
      std::string sched = std::get<1>(info.param);
      for (char& c : sched)
        if (c == '-') c = '_';
      return app + "_" + sched + "_" +
             std::to_string(std::get<2>(info.param)) + "m";
    });

TEST(PaperHeadline, PlbBeatsGreedyOnLargeHeterogeneousMatMul) {
  apps::MatMulWorkload w(32768);
  sim::SimCluster cluster(sim::scenario(4, true));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  baselines::GreedyScheduler greedy;
  const rt::RunResult rp = engine.run(w, plb);
  const rt::RunResult rg = engine.run(w, greedy);
  ASSERT_TRUE(rp.ok && rg.ok);
  EXPECT_LT(rp.makespan, rg.makespan);
}

TEST(PaperHeadline, OneMachineSpeedupNearOne) {
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(1));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  baselines::GreedyScheduler greedy;
  const rt::RunResult rp = engine.run(w, plb);
  const rt::RunResult rg = engine.run(w, greedy);
  ASSERT_TRUE(rp.ok && rg.ok);
  const double speedup = rg.makespan / rp.makespan;
  EXPECT_GT(speedup, 0.75);
  EXPECT_LT(speedup, 1.35);
}

TEST(PaperHeadline, PlbSharesFavorGpusOverCpus) {
  // Fig. 6: PLB-HeC gives proportionally more to GPUs, less to CPUs.
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(4));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok);
  double cpu_total = 0.0, gpu_total = 0.0;
  for (const auto& u : r.units) {
    if (u.kind == rt::ProcKind::kGpu)
      gpu_total += plb.fractions()[u.id];
    else
      cpu_total += plb.fractions()[u.id];
  }
  EXPECT_GT(gpu_total, 2.0 * cpu_total);
}

TEST(PaperHeadline, ThresholdMechanismRespondsToDrift) {
  // §VI: "the quality of service may change during execution, and the
  // ... threshold permits readjustments in data distributions." On a
  // stable cluster the threshold never fires (§V-c, reproduced in the
  // benches); under a mid-run QoS drop it must fire, re-solve and still
  // complete the run correctly. (Whether the rebalance *pays* depends on
  // the remaining horizon — see bench/abl_rebalance.)
  apps::GrnWorkload probe_w(apps::GrnWorkload::paper_instance(30'000));
  sim::SimCluster cluster(sim::scenario(4));
  rt::SimEngine probe_engine(cluster, {});
  core::PlbHecScheduler probe;
  const rt::RunResult pr = probe_engine.run(probe_w, probe);
  ASSERT_TRUE(pr.ok);
  EXPECT_EQ(probe.stats().rebalances, 0u);  // stable: never fires

  cluster.add_speed_event(7, pr.makespan * 0.5, 0.3);  // D.gpu0 drops 3.3x
  rt::SimEngine engine(cluster, {});
  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(30'000));
  core::PlbHecOptions opts;
  opts.step_fraction = 0.0625;  // fine windows: work left to re-balance
  core::PlbHecScheduler plb(opts);
  const rt::RunResult rp = engine.run(w, plb);
  ASSERT_TRUE(rp.ok) << rp.error;
  EXPECT_GE(plb.stats().rebalances, 1u);
  EXPECT_GT(rp.makespan, pr.makespan);  // the drop must cost time
  std::size_t done = 0;
  for (const auto& s : rp.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
}

TEST(PaperHeadline, LargerInputsLowerPlbIdleness) {
  // §V-c: idleness share shrinks as the input grows (modeling overhead
  // amortizes).
  sim::SimCluster cluster(sim::scenario(4));
  rt::SimEngine engine(cluster, {});
  const auto mean_idle = [&](std::size_t n) {
    apps::MatMulWorkload w(n);
    core::PlbHecScheduler plb;
    const rt::RunResult r = engine.run(w, plb);
    EXPECT_TRUE(r.ok);
    const auto idle = metrics::idle_percent(r);
    return std::accumulate(idle.begin(), idle.end(), 0.0) /
           static_cast<double>(idle.size());
  };
  EXPECT_GT(mean_idle(4096), mean_idle(65536) - 2.0);
}

TEST(PaperHeadline, GramEngineReproducesQrFractionHistories) {
  // The cached-moment fitting pipeline is a pure perf optimization: on the
  // Fig. 4 matmul scenario the selected fractions must match the legacy
  // design-matrix QR path to within solver noise.
  apps::MatMulWorkload w_qr(16384), w_auto(16384);
  sim::SimCluster cluster(sim::scenario(4));
  rt::SimEngine engine(cluster, {});

  core::PlbHecOptions qr_opts;
  qr_opts.fit.engine = fit::FitEngine::kQr;
  core::PlbHecScheduler plb_qr(qr_opts);
  const rt::RunResult r_qr = engine.run(w_qr, plb_qr);

  core::PlbHecScheduler plb_auto;  // default: kAuto
  const rt::RunResult r_auto = engine.run(w_auto, plb_auto);

  ASSERT_TRUE(r_qr.ok && r_auto.ok);
  const auto& hist_qr = plb_qr.stats().fraction_history;
  const auto& hist_auto = plb_auto.stats().fraction_history;
  ASSERT_EQ(hist_qr.size(), hist_auto.size());
  for (std::size_t s = 0; s < hist_qr.size(); ++s) {
    ASSERT_EQ(hist_qr[s].size(), hist_auto[s].size());
    for (std::size_t u = 0; u < hist_qr[s].size(); ++u)
      EXPECT_NEAR(hist_auto[s][u], hist_qr[s][u], 1e-9)
          << "selection " << s << " unit " << u;
  }
  // The acceptance sweep's fits are reused by the selection that follows.
  EXPECT_GT(plb_auto.stats().fits_cached, 0u);
  EXPECT_GT(plb_auto.stats().fits_computed, 0u);
  EXPECT_GT(plb_auto.stats().gram_solves, 0u);
  EXPECT_EQ(plb_qr.stats().gram_solves, 0u);
}

TEST(Resilience, QosDropMidRunStillCompletes) {
  apps::MatMulWorkload w(8192);
  sim::SimCluster cluster(sim::scenario(2));
  rt::SimEngine probe_engine(cluster, {});
  core::PlbHecScheduler probe;
  const rt::RunResult pr = probe_engine.run(w, probe);
  ASSERT_TRUE(pr.ok);
  cluster.add_speed_event(1, pr.makespan * 0.3, 0.2);
  cluster.add_speed_event(3, pr.makespan * 0.5, 0.5);
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.makespan, pr.makespan);  // degradation must cost time
}

TEST(Resilience, CascadingFailuresHandledByAllSchedulers) {
  for (const char* name : {"plb-hec", "greedy", "hdss", "acosta"}) {
    apps::MatMulWorkload w(8192);
    sim::SimCluster cluster(sim::scenario(2));
    cluster.fail_unit(0, 0.05);
    cluster.fail_unit(2, 0.1);
    rt::SimEngine engine(cluster, {});
    auto sched = make_scheduler(name);
    const rt::RunResult r = engine.run(w, *sched);
    ASSERT_TRUE(r.ok) << name << ": " << r.error;
    std::size_t done = 0;
    for (const auto& s : r.unit_stats) done += s.grains;
    EXPECT_EQ(done, w.total_grains()) << name;
  }
}

TEST(Metrics, GanttRendersOneRowPerUnit) {
  apps::MatMulWorkload w(4096);
  sim::SimCluster cluster(sim::scenario(2));
  rt::SimEngine engine(cluster, {});
  baselines::GreedyScheduler greedy;
  const rt::RunResult r = engine.run(w, greedy);
  ASSERT_TRUE(r.ok);
  const std::string g = metrics::ascii_gantt(r, 60);
  std::size_t rows = 0;
  for (char c : g)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, cluster.size());
  EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Metrics, TraceCsvRoundTrips) {
  apps::MatMulWorkload w(4096);
  sim::SimCluster cluster(sim::scenario(1));
  rt::SimEngine engine(cluster, {});
  baselines::GreedyScheduler greedy;
  const rt::RunResult r = engine.run(w, greedy);
  ASSERT_TRUE(r.ok);
  const std::string path = "/tmp/plbhec_trace_test.csv";
  metrics::write_trace_csv(r, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "unit,name,kind,start,end,grains");
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, r.trace.segments().size());
  std::remove(path.c_str());
}

TEST(Metrics, AggregateMakespans) {
  std::vector<rt::RunResult> runs(3);
  runs[0].ok = true;
  runs[0].makespan = 1.0;
  runs[1].ok = true;
  runs[1].makespan = 3.0;
  runs[2].ok = false;  // must be ignored
  runs[2].makespan = 100.0;
  const auto agg = metrics::aggregate_makespans(runs);
  EXPECT_EQ(agg.runs, 2u);
  EXPECT_DOUBLE_EQ(agg.mean, 2.0);
}

TEST(RealExecution, PlbHecSchedulesRealBlackScholes) {
  // The identical scheduler drives real host threads computing real
  // prices; validate numerics afterwards via put-call parity.
  apps::BlackScholesWorkload w(20'000);
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 2.0, 4.0};
  rt::ThreadEngine engine(opts);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  for (std::size_t i = 0; i < w.total_grains(); i += 997) {
    const auto& q = w.quotes()[i];
    const auto& p = w.prices()[i];
    const double rhs =
        q.spot - q.strike * std::exp(-q.rate * q.expiry_years);
    EXPECT_NEAR(p.call - p.put, rhs, 1e-9 * std::max(1.0, std::fabs(rhs)));
  }
  EXPECT_GE(plb.stats().solves, 1u);
  // Warm-start ledger invariants (real timings on a small host can park
  // flat-fitted units without any KKT solve, so only accounting holds).
  EXPECT_LE(plb.stats().warm_solves, plb.stats().solves);
  if (plb.stats().warm_solves == 0) EXPECT_EQ(plb.stats().kkt_solves_saved, 0u);
}

TEST(RealExecution, RebalancesWarmStartFromPreviousFractions) {
  // On the simulator the fitted curves are well conditioned, so every
  // refinement re-solve must reuse the previous fractions as x0 instead
  // of re-deriving the analytic equal-time point.
  apps::MatMulWorkload w(16384);
  sim::SimCluster cluster(sim::scenario(4, true));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(w, plb);
  ASSERT_TRUE(r.ok) << r.error;
  const auto& st = plb.stats();
  ASSERT_GE(st.solves, 2u) << "expected progressive refinement re-solves";
  EXPECT_GE(st.warm_solves, 1u);
  EXPECT_LE(st.warm_solves, st.solves);
  EXPECT_GT(st.kkt_solves, 0u);
}

TEST(RealExecution, GreedySchedulesRealMatMul) {
  const std::size_t n = 128;
  apps::MatMulWorkload w(n, /*materialize=*/true);
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0};
  rt::ThreadEngine engine(opts);
  baselines::GreedyScheduler greedy(16);
  const rt::RunResult r = engine.run(w, greedy);
  ASSERT_TRUE(r.ok) << r.error;
  // Spot-check the product.
  for (std::size_t i = 0; i < n; i += 31) {
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      acc += w.a()[i * n + k] * w.b()[k * n + 0];
    EXPECT_NEAR(w.result()[i * n + 0], acc, 1e-9);
  }
}

}  // namespace
}  // namespace plbhec
