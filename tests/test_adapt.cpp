// Drift-adaptation subsystem tests: windowed moment sets (forgetting and
// exact ring modes), the two-sided residual CUSUM, the robust ingest
// filter, the DriftMonitor front end and its moments-only fit_recent;
// then the scheduler-level behavior on a simulated mid-run throttle —
// detection, targeted (confined) re-probe, censored overdue-block
// detection — and the profile-store staleness stamps with the
// warm-start age gates they feed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "plbhec/adapt/cusum.hpp"
#include "plbhec/adapt/drift.hpp"
#include "plbhec/adapt/robust.hpp"
#include "plbhec/adapt/window.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec {
namespace {

// ---- WindowedSampleSet ----------------------------------------------------

TEST(WindowedSampleSet, NoForgettingMatchesPlainMomentsBitForBit) {
  adapt::WindowConfig config;  // lambda = 1, capacity = 0
  adapt::WindowedSampleSet window(config);
  fit::MomentSet plain;
  for (int i = 1; i <= 40; ++i) {
    const double x = 0.01 * i;
    const double t = 0.2 + 3.0 * x + 0.5 * x * x;
    window.add(x, t);
    plain.add(x, t);
  }
  EXPECT_TRUE(window.moments() == plain);
  EXPECT_EQ(window.count(), 40u);
  EXPECT_DOUBLE_EQ(window.effective_count(), 40.0);
}

TEST(WindowedSampleSet, ExactModeKeepsLastCapacitySamples) {
  adapt::WindowConfig config;
  config.capacity = 6;
  adapt::WindowedSampleSet window(config);
  for (int i = 1; i <= 25; ++i)
    window.add(0.01 * i, 0.1 + 2.0 * (0.01 * i));

  EXPECT_EQ(window.count(), 6u);
  EXPECT_DOUBLE_EQ(window.effective_count(), 6.0);
  const fit::SampleSet materialized = window.to_sample_set();
  ASSERT_EQ(materialized.size(), 6u);
  // Oldest retained sample is i = 20; x_lo tracks the ring content.
  const auto xs = materialized.xs();
  EXPECT_NEAR(*std::min_element(xs.begin(), xs.end()), 0.20, 1e-12);
  EXPECT_NEAR(window.x_lo(), 0.20, 1e-12);
}

TEST(WindowedSampleSet, ForgettingModeWeightsRecentBehavior) {
  adapt::WindowConfig config;
  config.lambda = 0.8;  // effective window ~5 samples
  adapt::WindowedSampleSet window(config);
  // Regime change: slope 1 for 30 samples, then slope 4 for 30.
  for (int i = 1; i <= 30; ++i) window.add(0.01 * i, 1.0 * 0.01 * i);
  for (int i = 1; i <= 30; ++i) window.add(0.01 * i, 4.0 * 0.01 * i);

  const fit::FitResult recent = adapt::fit_recent(window, {});
  ASSERT_TRUE(recent.model.valid());
  // The discounted fit must describe the new regime, not the average.
  EXPECT_NEAR(recent.model(0.2), 0.8, 0.1);
  // Discounted mass converges to 1/(1 - lambda).
  EXPECT_NEAR(window.effective_count(), 5.0, 0.05);
}

TEST(FitRecent, ExactWindowAgreesWithFreshRefit) {
  adapt::WindowConfig config;
  config.capacity = 8;
  adapt::WindowedSampleSet window(config);
  fit::SampleSet last8;
  for (int i = 1; i <= 30; ++i) {
    const double x = 0.01 * i;
    const double t = 0.05 + 3.0 * x;
    window.add(x, t);
    if (i > 22) last8.add(x, t);
  }
  const fit::FitResult from_window = adapt::fit_recent(window, {});
  const fit::FitResult from_samples = fit::select_model(last8);
  ASSERT_TRUE(from_window.model.valid());
  ASSERT_TRUE(from_samples.model.valid());
  for (double x : {0.23, 0.26, 0.30, 0.5, 0.9})
    EXPECT_NEAR(from_window.model(x), from_samples.model(x), 1e-9);
  EXPECT_NEAR(from_window.r2, from_samples.r2, 1e-9);
}

TEST(FitRecent, EmptyWindowGivesInvalidModel) {
  adapt::WindowedSampleSet window{adapt::WindowConfig{}};
  const fit::FitResult result = adapt::fit_recent(window, {});
  EXPECT_FALSE(result.model.valid());
  EXPECT_FALSE(result.acceptable);
}

// ---- ResidualCusum --------------------------------------------------------

adapt::CusumOptions fast_cusum() {
  adapt::CusumOptions options;
  options.min_stable = 4;
  return options;
}

TEST(ResidualCusum, ArmsAfterWarmupAndIgnoresQuietStream) {
  adapt::ResidualCusum detector(fast_cusum());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(detector.observe(0.0));
  EXPECT_TRUE(detector.armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(detector.observe(0.0));
}

TEST(ResidualCusum, PersistentShiftTripsButSpikeDoesNot) {
  // With a zero-residual warmup the spread sits at the sigma floor
  // (0.05), so a 0.2 residual is z = 4: one spike leaves S+ = 3.5 < h,
  // and the following quiet samples drain it by k = 0.5 each.
  adapt::ResidualCusum spiked(fast_cusum());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(spiked.observe(0.0));
  EXPECT_FALSE(spiked.observe(0.2));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(spiked.observe(0.0));

  // The same shift sustained accumulates 3.5 per step and trips fast.
  adapt::ResidualCusum shifted(fast_cusum());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(shifted.observe(0.0));
  EXPECT_FALSE(shifted.observe(0.2));
  EXPECT_TRUE(shifted.observe(0.2));
}

TEST(ResidualCusum, NegativeShiftTripsTheOtherSide) {
  adapt::ResidualCusum detector(fast_cusum());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(detector.observe(0.0));
  EXPECT_FALSE(detector.observe(-0.2));
  EXPECT_TRUE(detector.observe(-0.2));
  EXPECT_GT(detector.negative(), detector.options().h);
}

TEST(ResidualCusum, DeterministicAcrossInstances) {
  const std::vector<double> stream = {0.0, 0.01, -0.02, 0.0,  0.05, 0.12,
                                      0.2, 0.22, 0.19,  0.25, 0.3,  0.28};
  adapt::ResidualCusum a(fast_cusum());
  adapt::ResidualCusum b(fast_cusum());
  for (double r : stream) EXPECT_EQ(a.observe(r), b.observe(r));
  EXPECT_EQ(a.positive(), b.positive());
  EXPECT_EQ(a.observed(), b.observed());
}

// ---- BlockMinFilter / trimmed_mean ----------------------------------------

TEST(BlockMinFilter, ForwardsNormalizedCostMinimum) {
  adapt::BlockMinFilter filter(3);
  EXPECT_FALSE(filter.push(0.1, 2.0).has_value());   // cost 20
  EXPECT_FALSE(filter.push(0.2, 2.0).has_value());   // cost 10 <- min
  const auto out = filter.push(0.1, 4.0);            // cost 40
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->x, 0.2);
  EXPECT_DOUBLE_EQ(out->time, 2.0);
}

TEST(BlockMinFilter, TiesKeepTheEarliestObservation) {
  adapt::BlockMinFilter filter(3);
  EXPECT_FALSE(filter.push(0.1, 1.0).has_value());  // cost 10, first
  EXPECT_FALSE(filter.push(0.2, 2.0).has_value());  // cost 10, tie
  const auto out = filter.push(0.4, 4.0);           // cost 10, tie
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->x, 0.1);
}

TEST(BlockMinFilter, FlushReturnsPartialBlockBest) {
  adapt::BlockMinFilter filter(4);
  EXPECT_FALSE(filter.push(0.1, 3.0).has_value());
  EXPECT_FALSE(filter.push(0.1, 1.0).has_value());
  const auto out = filter.flush();
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->time, 1.0);
  EXPECT_EQ(filter.pending(), 0u);
  EXPECT_FALSE(filter.flush().has_value());
}

TEST(BlockMinFilter, DegenerateBlockForwardsEverything) {
  adapt::BlockMinFilter filter(1);
  for (int i = 1; i <= 5; ++i)
    EXPECT_TRUE(filter.push(0.1 * i, 1.0).has_value());
}

TEST(TrimmedMean, DropsTailsAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(adapt::trimmed_mean({1.0, 2.0, 3.0, 100.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(adapt::trimmed_mean({}, 0.2), 0.0);
}

// ---- DriftMonitor ---------------------------------------------------------

TEST(DriftMonitor, DisabledMonitorIsInert) {
  adapt::DriftMonitor monitor;
  adapt::DriftOptions options;  // enabled = false
  monitor.configure(options, 2);
  monitor.ingest(0, 0.1, 1.0);
  EXPECT_FALSE(monitor.observe(0, 100.0));
  EXPECT_EQ(monitor.window(0).count(), 0u);
  EXPECT_EQ(monitor.total_trips(), 0u);
}

TEST(DriftMonitor, TripsCountPerUnitAndResetClearsState) {
  adapt::DriftMonitor monitor;
  adapt::DriftOptions options;
  options.enabled = true;
  options.min_stable = 2;
  monitor.configure(options, 3);

  for (int i = 0; i < 2; ++i) EXPECT_FALSE(monitor.observe(1, 0.0));
  bool tripped = false;
  for (int i = 0; i < 10 && !tripped; ++i) tripped = monitor.observe(1, 0.5);
  EXPECT_TRUE(tripped);
  EXPECT_EQ(monitor.trips(1), 1u);
  EXPECT_EQ(monitor.trips(0), 0u);

  monitor.force_trip(2);  // censored overdue-block path
  EXPECT_EQ(monitor.trips(2), 1u);
  EXPECT_EQ(monitor.total_trips(), 2u);

  monitor.ingest(1, 0.1, 1.0);
  EXPECT_EQ(monitor.window(1).count(), 1u);
  monitor.reset_unit(1);
  EXPECT_EQ(monitor.window(1).count(), 0u);
  EXPECT_FALSE(monitor.detector(1).armed());
  EXPECT_EQ(monitor.trips(1), 1u);  // trip history survives the reset
}

TEST(DriftMonitor, RobustIngestFiltersThroughBlockMin) {
  adapt::DriftMonitor monitor;
  adapt::DriftOptions options;
  options.enabled = true;
  options.robust_ingest = true;
  options.robust_block = 3;
  monitor.configure(options, 1);
  monitor.ingest(0, 0.1, 5.0);
  monitor.ingest(0, 0.1, 1.0);
  EXPECT_EQ(monitor.window(0).count(), 0u);  // block still filling
  monitor.ingest(0, 0.1, 9.0);
  EXPECT_EQ(monitor.window(0).count(), 1u);  // min forwarded
}

// ---- Scheduler-level drift adaptation (simulated cluster) -----------------

constexpr std::size_t kGrains = 60'000;
constexpr double kThrottle = 0.02;

core::PlbHecOptions frozen_options() {
  core::PlbHecOptions opts;
  opts.step_fraction = 0.05;
  opts.refinements = 0;
  opts.rebalance_threshold = 1e9;  // stock rebalancing never fires
  return opts;
}

core::PlbHecOptions adaptive_options() {
  core::PlbHecOptions opts = frozen_options();
  opts.adapt.enabled = true;
  opts.adapt.min_stable = 2;  // noise-free sim: short warmup is safe
  opts.adapt.reprobe_rounds = 2;
  return opts;
}

struct DriftRun {
  rt::RunResult result;
  core::PlbHecStats stats;
  std::vector<obs::Event> events;
};

DriftRun run_drifted(const core::PlbHecOptions& opts, std::size_t drift_unit,
                     double drift_time, double factor) {
  sim::SimCluster cluster(sim::scenario(2));
  if (drift_time >= 0.0)
    cluster.add_speed_event(drift_unit, drift_time, factor);
  apps::GrnWorkload workload(apps::GrnWorkload::paper_instance(kGrains));
  obs::EventSink sink;
  rt::EngineOptions eopts;
  eopts.seed = 42;
  eopts.noise = sim::NoiseModel::none();
  eopts.record_trace = false;
  eopts.sink = &sink;
  rt::SimEngine engine(cluster, eopts);
  core::PlbHecScheduler plb(opts);
  DriftRun run;
  run.result = engine.run(workload, plb);
  run.stats = plb.stats();
  run.events = sink.drain();
  return run;
}

/// The run's workhorse: the unit that completed the most grains on an
/// undrifted trace (throttling it maximizes the fit-once penalty).
std::size_t workhorse_unit(const rt::RunResult& nominal) {
  std::size_t best = 0;
  for (std::size_t u = 1; u < nominal.units.size(); ++u)
    if (nominal.unit_stats[u].grains > nominal.unit_stats[best].grains)
      best = u;
  return best;
}

TEST(PlbHecAdapt, StepThrottleDetectsConfinesAndBeatsFitOnce) {
  const DriftRun nominal = run_drifted(frozen_options(), 0, -1.0, 1.0);
  ASSERT_TRUE(nominal.result.ok) << nominal.result.error;
  const std::size_t unit = workhorse_unit(nominal.result);
  const double onset = 0.3 * nominal.result.makespan;

  const DriftRun frozen =
      run_drifted(frozen_options(), unit, onset, kThrottle);
  const DriftRun adaptive =
      run_drifted(adaptive_options(), unit, onset, kThrottle);
  ASSERT_TRUE(frozen.result.ok) << frozen.result.error;
  ASSERT_TRUE(adaptive.result.ok) << adaptive.result.error;

  // No grain may be lost to the throttle under either configuration.
  EXPECT_EQ(frozen.result.grains_completed, frozen.result.total_grains);
  EXPECT_EQ(adaptive.result.grains_completed, adaptive.result.total_grains);

  // The drift subsystem saw the change and swapped a refreshed fit in.
  EXPECT_GE(adaptive.stats.drift_detections, 1u);
  EXPECT_GE(adaptive.stats.reprobe_swaps, 1u);
  EXPECT_EQ(frozen.stats.drift_detections, 0u);

  // Targeted re-probe: every ladder block ran on the drifted unit.
  const auto& per_unit = adaptive.stats.reprobe_blocks_per_unit;
  ASSERT_EQ(per_unit.size(), adaptive.result.units.size());
  EXPECT_GT(per_unit[unit], 0u);
  for (std::size_t u = 0; u < per_unit.size(); ++u)
    if (u != unit) EXPECT_EQ(per_unit[u], 0u) << "ladder leaked to " << u;

  // Adapting must beat the frozen model on the same drifted trace.
  EXPECT_LT(adaptive.result.makespan, 0.95 * frozen.result.makespan);
}

TEST(PlbHecAdapt, UndriftedTraceStaysQuiet) {
  // Default warmup (min_stable = 8): the baseline absorbs the frozen
  // model's size-dependent error as blocks shrink, so a clean trace must
  // not trip. (The short test warmup used above is a step-detection
  // accelerator and is allowed to be hair-triggered.)
  core::PlbHecOptions opts = frozen_options();
  opts.adapt.enabled = true;
  opts.adapt.reprobe_rounds = 2;
  const DriftRun run = run_drifted(opts, 0, -1.0, 1.0);
  ASSERT_TRUE(run.result.ok) << run.result.error;
  EXPECT_EQ(run.stats.drift_detections, 0u);
  EXPECT_EQ(run.stats.reprobe_swaps, 0u);
  EXPECT_EQ(run.stats.reprobe_blocks, 0u);
}

TEST(PlbHecAdapt, AdaptDisabledByDefaultKeepsFitOnceBehavior) {
  core::PlbHecOptions defaults;
  EXPECT_FALSE(defaults.adapt.enabled);
  const DriftRun nominal = run_drifted(frozen_options(), 0, -1.0, 1.0);
  ASSERT_TRUE(nominal.result.ok);
  const std::size_t unit = workhorse_unit(nominal.result);
  const DriftRun frozen = run_drifted(
      frozen_options(), unit, 0.3 * nominal.result.makespan, kThrottle);
  ASSERT_TRUE(frozen.result.ok);
  EXPECT_EQ(frozen.stats.drift_detections, 0u);
  EXPECT_EQ(frozen.stats.reprobe_blocks, 0u);
}

TEST(PlbHecAdapt, OverdueDetectionBeatsCompletionOnlyCusum) {
  // At a 50x throttle the residual CUSUM cannot see the slow block until
  // it completes -- the censored-observation problem. The overdue check
  // (adapt.overdue_factor) trips from the block's age instead; disabling
  // it must delay the first detection.
  const DriftRun nominal = run_drifted(frozen_options(), 0, -1.0, 1.0);
  ASSERT_TRUE(nominal.result.ok);
  const std::size_t unit = workhorse_unit(nominal.result);
  const double onset = 0.3 * nominal.result.makespan;

  core::PlbHecOptions censored_off = adaptive_options();
  censored_off.adapt.overdue_factor = 0.0;
  const DriftRun with_overdue =
      run_drifted(adaptive_options(), unit, onset, kThrottle);
  const DriftRun without_overdue =
      run_drifted(censored_off, unit, onset, kThrottle);
  ASSERT_TRUE(with_overdue.result.ok);
  ASSERT_TRUE(without_overdue.result.ok);
  EXPECT_GE(with_overdue.stats.drift_detections, 1u);
  EXPECT_GE(without_overdue.stats.drift_detections, 1u);

  const auto first_detection = [](const DriftRun& run) {
    for (const obs::Event& ev : run.events)
      if (ev.kind == obs::EventKind::kDriftDetected) return ev.time;
    return -1.0;
  };
  const double t_overdue = first_detection(with_overdue);
  const double t_cusum = first_detection(without_overdue);
  if (t_overdue < 0.0 || t_cusum < 0.0)
    GTEST_SKIP() << "observability events compiled out";
  EXPECT_LT(t_overdue, t_cusum);
  EXPECT_LE(with_overdue.result.makespan, without_overdue.result.makespan);
}

// ---- ProfileStore staleness stamps + warm-start age gates -----------------

fit::SampleSet curve_samples(double slope, double intercept,
                             std::size_t count) {
  fit::SampleSet set;
  for (std::size_t i = 1; i <= count; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(count + 1);
    set.add(x, intercept + slope * x);
  }
  return set;
}

svc::ProfileEntry entry_for(const std::string& app) {
  return svc::make_entry(app, "dev-cpu", curve_samples(2.0, 0.1, 8),
                         curve_samples(0.5, 0.01, 8), 1000.0, {});
}

TEST(ProfileStoreStamps, PutAdvancesSequenceAndStampsEntries) {
  svc::ProfileStore store;
  store.put(entry_for("app-a"));
  store.put(entry_for("app-b"));
  store.put(entry_for("app-a"));  // refresh: re-stamped, update count kept
  EXPECT_EQ(store.sequence(), 3u);

  const svc::ProfileEntry* a = store.find("app-a", "dev-cpu");
  const svc::ProfileEntry* b = store.find("app-b", "dev-cpu");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->stamp, b->stamp);  // app-a was refreshed last
  EXPECT_EQ(a->updates, 2u);

  // warm_profile exposes the age = sequence - stamp the scheduler gates on.
  EXPECT_EQ(store.warm_profile("app-a", "dev-cpu").age,
            store.sequence() - a->stamp);
  EXPECT_EQ(store.warm_profile("app-b", "dev-cpu").age,
            store.sequence() - b->stamp);
  EXPECT_GT(store.warm_profile("app-b", "dev-cpu").age, 0u);
}

TEST(ProfileStoreStamps, StampsAndSequenceSurviveEncodeDecode) {
  svc::ProfileStore store;
  store.put(entry_for("app-a"));
  store.put(entry_for("app-b"));
  const std::vector<std::uint8_t> bytes = store.encode();
  svc::ProfileStore loaded;
  ASSERT_EQ(svc::ProfileStore::decode(bytes, loaded),
            svc::StoreLoadStatus::kOk);
  EXPECT_EQ(loaded.sequence(), store.sequence());
  ASSERT_EQ(loaded.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].stamp, store.entries()[i].stamp);
    EXPECT_EQ(loaded.entries()[i].updates, store.entries()[i].updates);
  }
}

TEST(ProfileStoreStamps, VersionSkewStillRejectsCleanly) {
  svc::ProfileStore store;
  store.put(entry_for("app-a"));
  std::vector<std::uint8_t> bytes = store.encode();
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] += 1;  // version u32 lives at offset 8, little-endian
  svc::ProfileStore loaded;
  EXPECT_EQ(svc::ProfileStore::decode(bytes, loaded),
            svc::StoreLoadStatus::kVersionSkew);
  EXPECT_TRUE(loaded.empty());
}

/// A warm profile old enough to hit the scheduler's hard age ceiling.
rt::WarmProfile aged_profile(std::uint64_t age) {
  rt::WarmProfile warm;
  warm.total_grains = kGrains;
  warm.stored_r2 = 0.99;
  warm.age = age;
  for (int i = 1; i <= 8; ++i)
    warm.exec.push_back({0.02 * i, 0.01 * i});
  return warm;
}

TEST(PlbHecAdapt, StaleWarmProfileIsSkippedNotSeeded) {
  core::PlbHecOptions opts = frozen_options();
  opts.warm.assign(1, aged_profile(opts.warm_max_age + 1));
  sim::SimCluster cluster(sim::scenario(2));
  apps::GrnWorkload workload(apps::GrnWorkload::paper_instance(kGrains));
  rt::EngineOptions eopts;
  eopts.seed = 42;
  eopts.noise = sim::NoiseModel::none();
  rt::SimEngine engine(cluster, eopts);
  core::PlbHecScheduler plb(opts);
  const rt::RunResult result = engine.run(workload, plb);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(plb.stats().warm_stale_skips, 1u);
  EXPECT_EQ(plb.stats().warm_hits, 0u);
  EXPECT_EQ(plb.stats().warm_misses, 0u);  // skipped before validation
}

TEST(PlbHecAdapt, FreshProfileOfSameShapeReachesValidation) {
  core::PlbHecOptions opts = frozen_options();
  opts.warm.assign(1, aged_profile(0));
  sim::SimCluster cluster(sim::scenario(2));
  apps::GrnWorkload workload(apps::GrnWorkload::paper_instance(kGrains));
  rt::EngineOptions eopts;
  eopts.seed = 42;
  eopts.noise = sim::NoiseModel::none();
  rt::SimEngine engine(cluster, eopts);
  core::PlbHecScheduler plb(opts);
  const rt::RunResult result = engine.run(workload, plb);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(plb.stats().warm_stale_skips, 0u);
  // Age 0 passes the staleness gate; the observation-based validation
  // then accepts or rejects it -- either way it was considered.
  EXPECT_EQ(plb.stats().warm_hits + plb.stats().warm_misses, 1u);
}

}  // namespace
}  // namespace plbhec
