// Tests for the sharded JobManager coordinator: cross-shard lease
// brokering (a starving shard steals units at a block boundary), the
// per-shard fairness floor (every demanding shard keeps at least one
// unit while supply lasts), unit death while holding a brokered lease
// (zero lost grains), deterministic replay of the windowed parallel
// event loops, and the shard/broker counters surfaced through
// ServiceResult and obs::CounterRegistry.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "plbhec/apps/synthetic.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/svc/job_manager.hpp"

namespace plbhec::svc {
namespace {

JobSpec synthetic_job(std::string name, std::string kind,
                      PriorityClass priority, double arrival,
                      std::size_t grains, double flops = 2e7) {
  apps::SyntheticWorkload::Config config;
  config.grains = grains;
  config.flops_per_grain = flops;
  config.bytes_per_grain = 2048;
  return {std::move(name), std::move(kind), priority, arrival,
          [config] { return std::make_unique<apps::SyntheticWorkload>(config); }};
}

ServiceOptions sharded_options(std::size_t shards, std::uint64_t seed = 7) {
  ServiceOptions options;
  options.seed = seed;
  options.noise = sim::NoiseModel::none();
  options.shards = shards;
  return options;
}

TEST(JobManagerShard, StarvingShardStealsLeaseAtBlockBoundary) {
  sim::SimCluster cluster(sim::scenario(2));
  obs::CounterRegistry counters;
  ServiceOptions options = sharded_options(2);
  options.counters = &counters;
  // Two arrivals make the auto quantum (~4x the mean arrival gap) far
  // coarser than a lease epoch, letting the donor shard's units recycle
  // naturally between broker rounds; pin a fine quantum so the steal has
  // to go through a mid-epoch revoke.
  options.broker_quantum = 0.005;
  JobManager manager(cluster, options);
  // Job 0 lives on shard 0 and arrives alone, so the broker migrates
  // every unit to shard 0 and job 0 leases all of them. Job 1 (shard 1)
  // then arrives into a shard that owns nothing: the fairness floor
  // entitles shard 1 to a unit, shard 0's renegotiation revokes one at
  // the next block boundary, and the broker walks it across.
  manager.submit(synthetic_job("hog", "syn-a", PriorityClass::kNormal, 0.0,
                               30'000));
  manager.submit(synthetic_job("late", "syn-b", PriorityClass::kNormal, 0.02,
                               3'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.shards_used, 2u);
  EXPECT_GT(result.broker_rounds, 0u);
  // At least two crossings: the initial drift of shard 1's units toward
  // the only demand, and the steal back once "late" shows up.
  EXPECT_GE(result.broker_migrations, 2u);
  // The steal went through the revoke-at-block-boundary path, not a
  // mid-block preemption.
  EXPECT_GT(result.leases_revoked, 0u);
  for (const JobOutcome& job : result.jobs) {
    EXPECT_TRUE(job.ok) << job.name;
    EXPECT_GE(job.max_units_held, 1u) << job.name;
  }
  // The small job must not wait for the hog to drain completely.
  EXPECT_LT(result.jobs[1].finished, result.jobs[0].finished);
  EXPECT_EQ(counters.value("svc.shards"), 2u);
  EXPECT_EQ(counters.value("svc.broker.migrations"),
            result.broker_migrations);
  EXPECT_EQ(counters.value("svc.broker.rounds"), result.broker_rounds);
}

TEST(JobManagerShard, FairnessFloorKeepsEveryDemandingShardRunning) {
  sim::SimCluster cluster(sim::scenario(3));
  JobManager manager(cluster, sharded_options(3));
  // One job per shard, all present from (nearly) the start. The floor
  // hands each demanding shard one unit before any weighted remainder is
  // distributed, so all three must run concurrently instead of shard 0
  // draining the cluster first.
  manager.submit(synthetic_job("s0", "syn-a", PriorityClass::kNormal, 0.0,
                               10'000));
  manager.submit(synthetic_job("s1", "syn-b", PriorityClass::kNormal, 0.001,
                               10'000));
  manager.submit(synthetic_job("s2", "syn-c", PriorityClass::kNormal, 0.002,
                               10'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.shards_used, 3u);
  double latest_admission = 0.0;
  double earliest_finish = result.makespan;
  for (const JobOutcome& job : result.jobs) {
    EXPECT_TRUE(job.ok) << job.name;
    EXPECT_GE(job.max_units_held, 1u) << job.name;
    latest_admission = std::max(latest_admission, job.admitted);
    earliest_finish = std::min(earliest_finish, job.finished);
  }
  // All three jobs held units at the same time: every admission happened
  // before the first completion.
  EXPECT_LT(latest_admission, earliest_finish);
}

TEST(JobManagerShard, UnitDeathDuringBrokeredLeaseLosesZeroGrains) {
  sim::SimCluster cluster(sim::scenario(2));
  // Unit 1 is owned by shard 1 (round-robin ownership) but job 0 on
  // shard 0 arrives alone, so the broker lends it across before the
  // failure fires — the unit dies while holding a brokered lease.
  cluster.fail_unit(1, 0.015);
  JobManager manager(cluster, sharded_options(2));
  manager.submit(synthetic_job("early", "syn-a", PriorityClass::kNormal, 0.0,
                               20'000));
  manager.submit(synthetic_job("later", "syn-b", PriorityClass::kNormal, 0.03,
                               6'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.broker_migrations, 0u);
  // Zero lost grains: a job only reports ok when every grain executed,
  // so completion of both jobs across the failure is the conservation
  // statement.
  for (const JobOutcome& job : result.jobs) {
    EXPECT_TRUE(job.ok) << job.name;
    EXPECT_GT(job.tasks, 0u) << job.name;
  }
  EXPECT_EQ(result.completion_order.size(), 2u);
}

TEST(JobManagerShard, ShardedReplayIsDeterministic) {
  sim::SimCluster cluster(sim::scenario(3));
  const auto run_once = [&cluster] {
    auto manager =
        std::make_unique<JobManager>(cluster, sharded_options(3, 11));
    for (int i = 0; i < 9; ++i) {
      const auto priority = (i % 3 == 0)   ? PriorityClass::kHigh
                            : (i % 3 == 1) ? PriorityClass::kNormal
                                           : PriorityClass::kLow;
      manager->submit(synthetic_job("j" + std::to_string(i),
                                    "syn-" + std::to_string(i % 4), priority,
                                    0.004 * i, 4'000 + 500 * (i % 5)));
    }
    return manager->run();
  };
  const ServiceResult first = run_once();
  const ServiceResult second = run_once();
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(second.ok) << second.error;
  // Exact, not approximate: the windowed parallel loops must not leak
  // wall-clock scheduling into virtual time.
  EXPECT_EQ(first.completion_order, second.completion_order);
  EXPECT_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.leases_granted, second.leases_granted);
  EXPECT_EQ(first.leases_revoked, second.leases_revoked);
  EXPECT_EQ(first.broker_rounds, second.broker_rounds);
  EXPECT_EQ(first.broker_migrations, second.broker_migrations);
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(first.jobs[i].finished, second.jobs[i].finished);
    EXPECT_EQ(first.jobs[i].tasks, second.jobs[i].tasks);
  }
}

TEST(JobManagerShard, SingleShardKeepsClassicEventLoop) {
  sim::SimCluster cluster(sim::scenario(2));
  JobManager manager(cluster, sharded_options(1));
  manager.submit(synthetic_job("a", "syn-a", PriorityClass::kNormal, 0.0,
                               8'000));
  manager.submit(synthetic_job("b", "syn-b", PriorityClass::kHigh, 0.01,
                               4'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.shards_used, 1u);
  EXPECT_EQ(result.broker_rounds, 0u);
  EXPECT_EQ(result.broker_migrations, 0u);
}

TEST(JobManagerShard, ShardCountClampsToUnitCount) {
  sim::SimCluster cluster(sim::scenario(1));
  ServiceOptions options = sharded_options(64);
  JobManager manager(cluster, options);
  manager.submit(synthetic_job("only", "syn", PriorityClass::kNormal, 0.0,
                               4'000));
  const ServiceResult result = manager.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_LE(result.shards_used, cluster.size());
  EXPECT_TRUE(result.jobs[0].ok);
}

}  // namespace
}  // namespace plbhec::svc
