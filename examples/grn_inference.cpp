/// \file grn_inference.cpp
/// Gene-regulatory-network inference, both for real (a small materialized
/// instance where the exhaustive pair search actually runs and recovers
/// the planted regulator pair) and at paper scale on the simulated
/// 4-machine cluster.
///
/// Usage: grn_inference [--genes 2000] [--paper-genes 100000]

#include <cstdio>

#include "plbhec/apps/grn.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/thread_engine.hpp"
#include "plbhec/sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto genes = static_cast<std::size_t>(cli.get_int("genes", 2'000));
  const auto paper_genes =
      static_cast<std::size_t>(cli.get_int("paper-genes", 100'000));

  // --- Part 1: real inference on host threads -----------------------------
  apps::GrnWorkload::Config cfg;
  cfg.genes = genes;
  cfg.samples = 128;
  cfg.pair_window = 64;
  cfg.materialize = true;
  apps::GrnWorkload real(cfg);

  rt::ThreadEngineOptions topts;
  topts.slowdowns = {1.0, 2.0};
  rt::ThreadEngine tengine(topts);
  core::PlbHecScheduler plb;
  std::printf("Exhaustive pair search over %zu genes (real kernel)...\n",
              genes);
  const rt::RunResult rr = tengine.run(real, plb);
  if (!rr.ok) {
    std::printf("real run failed: %s\n", rr.error.c_str());
    return 1;
  }
  // The synthetic expression data plants target = gene0 XOR gene1; the
  // search from gene 0's window must find partner 1 with a low entropy.
  std::printf("wall %.3f s; gene 0 best partner = %u (entropy %.3f; planted "
              "pair is {0,1})\n",
              rr.makespan, real.best_partner()[0],
              static_cast<double>(real.scores()[0]));

  // --- Part 2: paper-scale run on the simulated cluster -------------------
  apps::GrnWorkload big(apps::GrnWorkload::paper_instance(paper_genes));
  sim::SimCluster cluster(sim::scenario(4));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb2;
  baselines::GreedyScheduler greedy;
  const rt::RunResult rp = engine.run(big, plb2);
  const rt::RunResult rg = engine.run(big, greedy);
  if (!rp.ok || !rg.ok) {
    std::printf("simulated run failed\n");
    return 1;
  }
  std::printf(
      "\nSimulated cluster, %zu genes: PLB-HeC %.3f s vs Greedy %.3f s "
      "(speedup %.2fx)\n",
      paper_genes, rp.makespan, rg.makespan, rg.makespan / rp.makespan);
  std::printf("\nPLB-HeC block shares:\n");
  for (const auto& u : rp.units)
    std::printf("  %-8s %.3f\n", u.name.c_str(), plb2.fractions()[u.id]);
  return 0;
}
