/// \file quickstart.cpp
/// Minimal end-to-end tour of the library: build the paper's 4-machine
/// heterogeneous cluster, run Black-Scholes under PLB-HeC and under the
/// greedy baseline, and print makespans, the selected block distribution
/// and an ASCII Gantt chart.
///
/// Usage: quickstart [--options N] [--machines M] [--seed S]

#include <cstdio>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto n_options =
      static_cast<std::size_t>(cli.get_int("options", 200'000));
  const auto machines = static_cast<std::size_t>(cli.get_int("machines", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // 1. The simulated cluster (Table I machines A..D).
  const auto configs = sim::scenario(machines);
  std::printf("Cluster:\n%s\n", sim::table1_string(configs).c_str());
  sim::SimCluster cluster(configs);

  // 2. The workload: a Black-Scholes portfolio, one option per grain.
  apps::BlackScholesWorkload workload(n_options);

  // 3. Run under PLB-HeC and under the greedy baseline.
  rt::EngineOptions engine_opts;
  engine_opts.seed = seed;
  rt::SimEngine engine(cluster, engine_opts);

  core::PlbHecScheduler plb;
  const rt::RunResult plb_run = engine.run(workload, plb);

  baselines::GreedyScheduler greedy;
  const rt::RunResult greedy_run = engine.run(workload, greedy);

  if (!plb_run.ok || !greedy_run.ok) {
    std::printf("run failed: %s%s\n", plb_run.error.c_str(),
                greedy_run.error.c_str());
    return 1;
  }

  // 4. Report.
  std::printf("PLB-HeC makespan : %.4f s  (probe rounds: %zu, solves: %zu)\n",
              plb_run.makespan, plb.stats().probe_rounds, plb.stats().solves);
  std::printf("Greedy  makespan : %.4f s\n", greedy_run.makespan);
  std::printf("Speedup vs greedy: %.2fx\n\n",
              greedy_run.makespan / plb_run.makespan);

  Table dist({"Unit", "Selected fraction", "Processed share", "Idle %"});
  const auto shares = metrics::processed_shares(plb_run);
  const auto idle = metrics::idle_percent(plb_run);
  for (const auto& u : plb_run.units) {
    dist.row()
        .add(u.name)
        .add(plb.fractions()[u.id], 4)
        .add(shares[u.id], 4)
        .add(idle[u.id], 1);
  }
  dist.print();

  std::printf("\nGantt ('#'=exec, '-'=transfer, '.'=idle):\n%s\n",
              metrics::ascii_gantt(plb_run, 90).c_str());

  // 5. The prices are real: show one.
  workload.execute_cpu(0, 1);
  std::printf("Sample option: spot=%.2f strike=%.2f -> call=%.4f put=%.4f\n",
              workload.quotes()[0].spot, workload.quotes()[0].strike,
              workload.prices()[0].call, workload.prices()[0].put);
  return 0;
}
