/// \file distributed_matmul.cpp
/// Distributed real execution: multiplies an actual matrix across a local
/// unit and several worker daemons over loopback TCP. The daemons run
/// in-process here so the demo is a single command, but they speak the
/// same framed protocol `plbhec-workerd` serves — point RemoteUnitOptions
/// at another machine's daemon and nothing else changes.
///
/// PLB-HeC's transfer model G_p(x) = a1*x + a2 is fitted from the wire
/// times the coordinator measures around each block round-trip; the table
/// at the end compares those measured samples with the fitted line.
///
/// Usage: distributed_matmul [--n 384] [--workers 2]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/net/remote_unit.hpp"
#include "plbhec/net/workerd.hpp"
#include "plbhec/rt/thread_engine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 384));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));

  // One daemon per remote worker, each a bit slower than the last — the
  // heterogeneity the balancer has to learn.
  std::vector<std::unique_ptr<net::WorkerDaemon>> daemons;
  for (std::size_t w = 0; w < workers; ++w) {
    net::WorkerDaemonOptions dopts;
    dopts.port = 0;  // ephemeral
    dopts.name = "node" + std::to_string(w + 1);
    dopts.slowdown = 1.5 + static_cast<double>(w);
    daemons.push_back(std::make_unique<net::WorkerDaemon>(dopts));
  }

  // Unit 0 executes in-process; units 1..workers drive the daemons.
  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  {
    rt::LocalExecUnit::Options lo;
    lo.name = "coord.cpu0";
    units.push_back(std::make_unique<rt::LocalExecUnit>(lo));
  }
  for (std::size_t w = 0; w < workers; ++w) {
    net::RemoteUnitOptions ro;
    ro.port = daemons[w]->port();
    ro.name = "remote." + std::to_string(w + 1);
    ro.machine = static_cast<std::uint32_t>(w + 1);
    ro.event_unit = static_cast<std::uint32_t>(w + 1);
    units.push_back(std::make_unique<net::RemoteUnit>(ro));
  }

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));

  apps::MatMulWorkload workload(n, /*materialize=*/true);
  core::PlbHecScheduler plb;
  std::printf("Multiplying %zux%zu across 1 local unit + %zu worker "
              "daemon(s) on loopback...\n",
              n, n, workers);
  const rt::RunResult r = engine.run(workload, plb);
  if (!r.ok) {
    std::printf("run failed: %s\n", r.error.c_str());
    return 1;
  }

  // --- Per-unit fraction table (who computed what) ---
  Table t({"Unit", "grains", "share", "tasks", "fraction", "transfer_s"});
  const auto shares = metrics::processed_shares(r);
  const auto& fractions = plb.fractions();
  for (const auto& u : r.units)
    t.row()
        .add(u.name)
        .add(r.unit_stats[u.id].grains)
        .add(shares[u.id], 3)
        .add(r.unit_stats[u.id].tasks)
        .add(u.id < fractions.size() ? fractions[u.id] : 0.0, 3)
        .add(r.unit_stats[u.id].transfer_seconds, 4);
  t.print();
  std::printf("wall time %.3f s, %zu grains, %zu barriers\n\n", r.makespan,
              r.total_grains, r.barriers);

  // --- Measured vs fitted transfer curves (G_p learned from the wire) ---
  const auto& models = plb.models();
  for (const auto& u : r.units) {
    if (u.id >= models.size()) continue;
    const auto& g = models[u.id].transfer;
    const auto& samples = plb.profiles().transfer_samples(u.id).items();
    if (samples.empty()) continue;
    std::printf("%s: G(x) = %.4g*x + %.4g  (R^2 %.3f, %zu samples)\n",
                u.name.c_str(), g.slope, g.latency, g.r2, samples.size());
    Table curve({"x (fraction)", "measured_s", "fitted_s"});
    const std::size_t step = std::max<std::size_t>(1, samples.size() / 6);
    for (std::size_t i = 0; i < samples.size(); i += step)
      curve.row()
          .add(samples[i].x, 4)
          .add(samples[i].time, 5)
          .add(g(samples[i].x), 5);
    curve.print();
  }

  // --- Validate against an in-process reference multiplication ---
  apps::MatMulWorkload reference(n, /*materialize=*/true);
  reference.execute_cpu(0, n);
  const bool identical = workload.result() == reference.result();
  std::printf("distributed C == local C: %s\n",
              identical ? "bit-identical (OK)" : "MISMATCH");

  std::uint64_t remote_blocks = 0;
  for (const auto& d : daemons) remote_blocks += d->blocks_served();
  std::printf("blocks served by daemons: %llu\n",
              static_cast<unsigned long long>(remote_blocks));
  for (auto& d : daemons) d->stop();
  return identical ? 0 : 1;
}
