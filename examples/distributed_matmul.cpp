/// \file distributed_matmul.cpp
/// Distributed real execution: multiplies an actual matrix across a local
/// unit and several worker daemons over loopback TCP. The daemons run
/// in-process here so the demo is a single command, but they speak the
/// same framed protocol `plbhec-workerd` serves — point RemoteUnitOptions
/// at another machine's daemon and nothing else changes.
///
/// PLB-HeC's transfer model G_p(x) = a1*x + a2 is fitted from the wire
/// times the coordinator measures around each block round-trip; the table
/// at the end compares those measured samples with the fitted line.
///
/// With --pipeline-depth N (N > 1) a second comparison drives the same
/// rows straight through the remote data plane twice — once with the
/// synchronous one-frame-per-round-trip protocol and once with the
/// pipelined plane streaming identical row frames through a depth-N
/// window — and prints the two makespans side by side with the measured
/// wire/kernel overlap fraction. (The scheduler-driven run above it also
/// honors the depth, but at demo sizes PLB-HeC hands the slowed-down
/// remotes mostly single-row probing blocks, which always take the sync
/// path; the direct drive is what isolates the wire layer.)
///
/// Usage: distributed_matmul [--n 384] [--workers 2] [--pipeline-depth 1]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/net/remote_unit.hpp"
#include "plbhec/net/workerd.hpp"
#include "plbhec/rt/thread_engine.hpp"

namespace {

using namespace plbhec;

struct RunOutcome {
  bool ok = false;
  bool identical = false;
  double makespan = 0.0;
  double overlap_fraction = 0.0;  ///< aggregate across remote units
  std::uint64_t remote_blocks = 0;
  std::uint64_t chunks_pipelined = 0;
};

/// One full distributed multiplication against fresh daemons. `depth` = 1
/// is the synchronous protocol; verbose runs print the share table and
/// the fitted transfer curves.
RunOutcome run_once(std::size_t n, std::size_t workers, std::size_t depth,
                    bool verbose) {
  RunOutcome out;

  // One daemon per remote worker, each a bit slower than the last — the
  // heterogeneity the balancer has to learn.
  std::vector<std::unique_ptr<net::WorkerDaemon>> daemons;
  for (std::size_t w = 0; w < workers; ++w) {
    net::WorkerDaemonOptions dopts;
    dopts.port = 0;  // ephemeral
    dopts.name = "node" + std::to_string(w + 1);
    dopts.slowdown = 1.5 + static_cast<double>(w);
    daemons.push_back(std::make_unique<net::WorkerDaemon>(dopts));
  }

  // Unit 0 executes in-process; units 1..workers drive the daemons.
  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  {
    rt::LocalExecUnit::Options lo;
    lo.name = "coord.cpu0";
    units.push_back(std::make_unique<rt::LocalExecUnit>(lo));
  }
  std::vector<const net::RemoteUnit*> remotes;
  for (std::size_t w = 0; w < workers; ++w) {
    net::RemoteUnitOptions ro;
    ro.port = daemons[w]->port();
    ro.name = "remote." + std::to_string(w + 1);
    ro.machine = static_cast<std::uint32_t>(w + 1);
    ro.event_unit = static_cast<std::uint32_t>(w + 1);
    ro.pipeline_depth = depth;
    // The engine's rebalancing rounds hand out blocks of a handful of
    // rows; stream them row-per-frame so the demo actually pipelines.
    if (depth > 1) ro.min_chunk_grains = 1;
    auto remote = std::make_unique<net::RemoteUnit>(ro);
    remotes.push_back(remote.get());
    units.push_back(std::move(remote));
  }

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));

  apps::MatMulWorkload workload(n, /*materialize=*/true);
  core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  if (!r.ok) {
    std::printf("run failed: %s\n", r.error.c_str());
    return out;
  }

  if (verbose) {
    // --- Per-unit fraction table (who computed what) ---
    Table t({"Unit", "grains", "share", "tasks", "fraction", "transfer_s"});
    const auto shares = metrics::processed_shares(r);
    const auto& fractions = plb.fractions();
    for (const auto& u : r.units)
      t.row()
          .add(u.name)
          .add(r.unit_stats[u.id].grains)
          .add(shares[u.id], 3)
          .add(r.unit_stats[u.id].tasks)
          .add(u.id < fractions.size() ? fractions[u.id] : 0.0, 3)
          .add(r.unit_stats[u.id].transfer_seconds, 4);
    t.print();
    std::printf("wall time %.3f s, %zu grains, %zu barriers\n\n",
                r.makespan, r.total_grains, r.barriers);

    // --- Measured vs fitted transfer curves (G_p learned from wire) ---
    const auto& models = plb.models();
    for (const auto& u : r.units) {
      if (u.id >= models.size()) continue;
      const auto& g = models[u.id].transfer;
      const auto& samples = plb.profiles().transfer_samples(u.id).items();
      if (samples.empty()) continue;
      std::printf("%s: G(x) = %.4g*x + %.4g  (R^2 %.3f, %zu samples)\n",
                  u.name.c_str(), g.slope, g.latency, g.r2,
                  samples.size());
      Table curve({"x (fraction)", "measured_s", "fitted_s"});
      const std::size_t step =
          std::max<std::size_t>(1, samples.size() / 6);
      for (std::size_t i = 0; i < samples.size(); i += step)
        curve.row()
            .add(samples[i].x, 4)
            .add(samples[i].time, 5)
            .add(g(samples[i].x), 5);
      curve.print();
    }
  }

  // --- Validate against an in-process reference multiplication ---
  apps::MatMulWorkload reference(n, /*materialize=*/true);
  reference.execute_cpu(0, n);
  out.identical = workload.result() == reference.result();

  // Aggregate overlap across remote links: how much of the smaller phase
  // (wire vs kernel) the pipeline hid, 0 under the sync protocol.
  double saved = 0.0;
  double floor = 0.0;
  for (const net::RemoteUnit* remote : remotes) {
    saved += remote->wire_stats().overlap_saved_seconds;
    floor += remote->wire_stats().overlap_floor_seconds;
    out.chunks_pipelined += remote->wire_stats().chunks_pipelined;
  }
  out.overlap_fraction =
      floor > 0.0 ? std::min(1.0, std::max(0.0, saved / floor)) : 0.0;

  for (const auto& d : daemons) out.remote_blocks += d->blocks_served();
  for (auto& d : daemons) d->stop();
  out.makespan = r.makespan;
  out.ok = true;
  return out;
}

/// One leg of the wire-layer comparison: every row of an n x n matmul is
/// shipped as its own result frame, split evenly across `workers`
/// equal-speed daemons. `depth` = 1 issues one row per round-trip;
/// `depth` > 1 issues 2*depth-row blocks that the unit streams as
/// identical row frames through its window. Same frames, different
/// windowing — the makespan difference is the protocol turnaround the
/// window hides.
RunOutcome run_wire_leg(std::size_t n, std::size_t workers,
                        std::size_t depth) {
  RunOutcome out;
  std::vector<std::unique_ptr<net::WorkerDaemon>> daemons;
  std::vector<std::unique_ptr<net::RemoteUnit>> units;
  for (std::size_t w = 0; w < workers; ++w) {
    net::WorkerDaemonOptions dopts;
    dopts.port = 0;
    dopts.name = "wire" + std::to_string(w + 1);
    daemons.push_back(std::make_unique<net::WorkerDaemon>(dopts));
    net::RemoteUnitOptions ro;
    ro.port = daemons[w]->port();
    ro.name = "wire.remote." + std::to_string(w + 1);
    ro.pipeline_depth = depth;
    ro.min_chunk_grains = 1;  // row-sized frames
    units.push_back(std::make_unique<net::RemoteUnit>(ro));
  }

  apps::MatMulWorkload workload(n, /*materialize=*/true);
  for (auto& unit : units)
    if (!unit->begin_run(workload)) return out;

  const std::size_t block = depth > 1 ? 2 * depth : 1;
  const std::size_t per_unit = n / workers;
  std::atomic<bool> failed{false};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (std::size_t w = 0; w < workers; ++w) {
    drivers.emplace_back([&, w] {
      const std::size_t lo = w * per_unit;
      const std::size_t hi = w + 1 == workers ? n : lo + per_unit;
      for (std::size_t b = lo; b < hi && !failed.load();) {
        const std::size_t e = std::min(b + block, hi);
        rt::BlockTiming timing;
        if (!units[w]->execute(workload, b, e, timing)) failed.store(true);
        b = e;
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  out.makespan = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  double saved = 0.0;
  double floor = 0.0;
  for (auto& unit : units) {
    saved += unit->wire_stats().overlap_saved_seconds;
    floor += unit->wire_stats().overlap_floor_seconds;
    out.chunks_pipelined += unit->wire_stats().chunks_pipelined;
    unit->end_run();
  }
  out.overlap_fraction =
      floor > 0.0 ? std::min(1.0, std::max(0.0, saved / floor)) : 0.0;
  for (const auto& d : daemons) out.remote_blocks += d->blocks_served();
  for (auto& d : daemons) d->stop();
  if (failed.load()) return out;

  apps::MatMulWorkload reference(n, /*materialize=*/true);
  reference.execute_cpu(0, n);
  out.identical = workload.result() == reference.result();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 384));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  const auto depth =
      static_cast<std::size_t>(cli.get_int("pipeline-depth", 1));

  std::printf("Multiplying %zux%zu across 1 local unit + %zu worker "
              "daemon(s) on loopback...\n",
              n, n, workers);
  const RunOutcome main_run =
      run_once(n, workers, std::max<std::size_t>(1, depth), true);
  if (!main_run.ok) return 1;
  std::printf("distributed C == local C: %s\n",
              main_run.identical ? "bit-identical (OK)" : "MISMATCH");
  std::printf("blocks served by daemons: %llu\n",
              static_cast<unsigned long long>(main_run.remote_blocks));

  bool identical = main_run.identical;
  if (depth > 1) {
    // Wire-layer comparison: same row frames, sync vs windowed.
    std::printf("\nDriving every row straight through the data plane, "
                "sync vs pipelined...\n");
    const RunOutcome sync_run = run_wire_leg(n, workers, 1);
    const RunOutcome pipe_run = run_wire_leg(n, workers, depth);
    if (!sync_run.ok || !pipe_run.ok) return 1;
    identical = identical && sync_run.identical && pipe_run.identical;
    Table cmp({"protocol", "makespan_s", "overlap", "chunks", "blocks"});
    cmp.row()
        .add("sync (depth 1)")
        .add(sync_run.makespan, 3)
        .add(sync_run.overlap_fraction, 3)
        .add(sync_run.chunks_pipelined)
        .add(sync_run.remote_blocks);
    cmp.row()
        .add("pipelined (depth " + std::to_string(depth) + ")")
        .add(pipe_run.makespan, 3)
        .add(pipe_run.overlap_fraction, 3)
        .add(pipe_run.chunks_pipelined)
        .add(pipe_run.remote_blocks);
    cmp.print();
    std::printf("pipelined/sync makespan ratio: %.3f  (wire/kernel "
                "overlap hidden by the window: %.1f%%)\n",
                sync_run.makespan > 0.0
                    ? pipe_run.makespan / sync_run.makespan
                    : 0.0,
                pipe_run.overlap_fraction * 100.0);
  }
  return identical ? 0 : 1;
}
