/// \file fault_tolerance.cpp
/// The paper's §VI future-work scenario: machines become unavailable (or
/// degrade) during execution. A GPU dies mid-run and a CPU drops to half
/// speed; PLB-HeC redistributes the remaining work across the survivors
/// and the run still completes every grain.
///
/// Usage: fault_tolerance [--genes 60000]

#include <cstdio>

#include "plbhec/apps/grn.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto genes = static_cast<std::size_t>(cli.get_int("genes", 60'000));

  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(genes));

  // Baseline run to calibrate event times.
  sim::SimCluster healthy(sim::scenario(4));
  rt::SimEngine probe_engine(healthy, {});
  core::PlbHecScheduler probe;
  const rt::RunResult base = probe_engine.run(w, probe);
  if (!base.ok) return 1;
  std::printf("healthy cluster makespan: %.4f s\n\n", base.makespan);

  sim::SimCluster faulty(sim::scenario(4));
  faulty.fail_unit(5, base.makespan * 0.35);            // C.gpu0 dies
  faulty.add_speed_event(0, base.makespan * 0.5, 0.5);  // A.cpu at half speed
  std::printf("injecting: C.gpu0 fails at %.4f s, A.cpu halves at %.4f s\n",
              base.makespan * 0.35, base.makespan * 0.5);

  rt::EngineOptions eopts;
  rt::SimEngine engine(faulty, eopts);
  core::PlbHecOptions opts;
  opts.step_fraction = 0.0625;  // finer windows react faster to events
  core::PlbHecScheduler plb(opts);
  const rt::RunResult r = engine.run(w, plb);
  if (!r.ok) {
    std::printf("faulty run failed: %s\n", r.error.c_str());
    return 1;
  }

  Table t({"Unit", "grains", "share", "failed"});
  const auto shares = metrics::processed_shares(r);
  std::size_t done = 0;
  for (const auto& u : r.units) {
    done += r.unit_stats[u.id].grains;
    t.row()
        .add(u.name)
        .add(r.unit_stats[u.id].grains)
        .add(shares[u.id], 3)
        .add(r.unit_stats[u.id].failed ? "yes" : "");
  }
  t.print();
  std::printf(
      "\nmakespan %.4f s (healthy %.4f s); selections=%zu rebalances=%zu; "
      "grains completed %zu / %zu %s\n",
      r.makespan, base.makespan, plb.stats().solves,
      plb.stats().rebalances, done, w.total_grains(),
      done == w.total_grains() ? "(all work recovered)" : "(LOST WORK!)");
  std::printf("\nGantt:\n%s", metrics::ascii_gantt(r, 100).c_str());
  return done == w.total_grains() ? 0 : 1;
}
