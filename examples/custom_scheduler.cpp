/// \file custom_scheduler.cpp
/// Shows the scheduler plug-in API (the StarPU-like policy surface): a
/// user-defined work-stealing-flavored policy in ~30 lines, run head to
/// head against PLB-HeC.
///
/// Usage: custom_scheduler [--n 16384]

#include <algorithm>
#include <cstdio>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace {

using namespace plbhec;

/// Guided self-scheduling: every request receives remaining/(2n) grains,
/// so blocks decay geometrically and the tail self-balances. A classic
/// policy in a dozen lines against the rt::Scheduler interface.
class GuidedScheduler final : public rt::Scheduler {
 public:
  std::string name() const override { return "Guided"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override {
    units_ = units.size();
    total_ = work.total_grains;
    issued_ = 0;
  }

  std::size_t next_block(rt::UnitId, double) override {
    const std::size_t remaining = total_ > issued_ ? total_ - issued_ : 0;
    const std::size_t block =
        std::max<std::size_t>(1, remaining / (2 * units_));
    issued_ += block;
    return block;
  }

  void on_complete(const rt::TaskObservation&) override {}

 private:
  std::size_t units_ = 1;
  std::size_t total_ = 0;
  std::size_t issued_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 16'384));

  apps::MatMulWorkload w(n);
  sim::SimCluster cluster(sim::scenario(4, true));
  rt::SimEngine engine(cluster, {});

  GuidedScheduler guided;
  core::PlbHecScheduler plb;
  const rt::RunResult rg = engine.run(w, guided);
  const rt::RunResult rp = engine.run(w, plb);
  if (!rg.ok || !rp.ok) {
    std::printf("run failed: %s%s\n", rg.error.c_str(), rp.error.c_str());
    return 1;
  }
  std::printf("MatMul %zu on 4 machines:\n", n);
  std::printf("  custom Guided scheduler : %.3f s\n", rg.makespan);
  std::printf("  PLB-HeC                 : %.3f s\n", rp.makespan);
  std::printf(
      "\nThe policy interface is rt::Scheduler (start / next_block /\n"
      "on_complete / on_barrier / on_unit_failed); both engines — the\n"
      "discrete-event simulator and the real-threaded executor — drive any\n"
      "policy unmodified.\n");
  return 0;
}
