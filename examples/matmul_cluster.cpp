/// \file matmul_cluster.cpp
/// The paper's headline scenario: large matrix multiplication on the
/// heterogeneous 4-machine cluster, comparing all four scheduling policies
/// plus the oracle static distribution (the simulated lower bound among
/// static schemes).
///
/// Usage: matmul_cluster [--n 32768] [--machines 4] [--reps 3]
///                       [--trace-json out.json]
///
/// With --trace-json, one extra PLB-HeC run is traced and written as
/// Chrome trace-event JSON — open it in Perfetto (ui.perfetto.dev) or
/// chrome://tracing to see per-unit exec/transfer slices and the
/// scheduler's probe/fit/solve/rebalance decisions.

#include <cstdio>
#include <memory>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/baselines/static_profile.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/stats.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/obs/exporters.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32'768));
  const auto machines = static_cast<std::size_t>(cli.get_int("machines", 4));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));

  const auto configs = sim::scenario(machines, /*dual_gpu_boards=*/true);
  std::printf("Matrix multiplication %zu x %zu on %zu machine(s):\n%s\n", n,
              n, machines, sim::table1_string(configs).c_str());

  sim::SimCluster cluster(configs);
  apps::MatMulWorkload workload(n);
  const auto oracle = baselines::oracle_static_weights(
      cluster, workload.profile(), workload.total_grains(),
      workload.bytes_per_grain());

  const std::vector<std::string> names{"PLB-HeC", "HDSS", "Acosta", "Greedy",
                                       "Static (oracle)"};
  std::vector<double> means, sds;
  for (const auto& name : names) {
    RunningStats stats;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      rt::EngineOptions opts;
      opts.seed = 100 + rep;
      opts.record_trace = false;
      rt::SimEngine engine(cluster, opts);
      std::unique_ptr<rt::Scheduler> sched;
      if (name == "PLB-HeC")
        sched = std::make_unique<core::PlbHecScheduler>();
      else if (name == "HDSS")
        sched = std::make_unique<baselines::HdssScheduler>();
      else if (name == "Acosta")
        sched = std::make_unique<baselines::AcostaScheduler>();
      else if (name == "Greedy")
        sched = std::make_unique<baselines::GreedyScheduler>();
      else
        sched = std::make_unique<baselines::StaticProfileScheduler>(oracle);
      const rt::RunResult r = engine.run(workload, *sched);
      if (!r.ok) {
        std::printf("%s failed: %s\n", name.c_str(), r.error.c_str());
        return 1;
      }
      stats.add(r.makespan);
    }
    means.push_back(stats.mean());
    sds.push_back(stats.stddev());
  }

  const double greedy_mean = means[3];
  Table t({"Scheduler", "makespan [s]", "sd", "speedup vs Greedy"});
  for (std::size_t i = 0; i < names.size(); ++i)
    t.row().add(names[i]).add(means[i], 3).add(sds[i], 3).add(
        greedy_mean / means[i], 2);
  t.print();

  const std::string trace_path = cli.get("trace-json", "");
  if (!trace_path.empty()) {
    obs::EventSink sink;
    rt::EngineOptions opts;
    opts.seed = 100;
    opts.sink = &sink;
    rt::SimEngine engine(cluster, opts);
    core::PlbHecScheduler plb;
    const rt::RunResult r = engine.run(workload, plb);
    if (!r.ok) {
      std::printf("traced run failed: %s\n", r.error.c_str());
      return 1;
    }
    const std::vector<obs::Event> events = sink.drain();
    if (!obs::write_chrome_trace(r, events, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("\nwrote Chrome trace (%zu events, %zu segments) to %s\n",
                events.size(), r.trace.segments().size(), trace_path.c_str());
    std::printf("%s", obs::run_summary(r, events).c_str());
  }
  return 0;
}
