/// \file blackscholes_portfolio.cpp
/// Real execution: prices an actual option portfolio with PLB-HeC driving
/// real host threads (the threaded engine). Heterogeneity is emulated with
/// per-unit slowdowns; the scheduler learns the resulting curves exactly
/// as it would on real heterogeneous devices. Prices are validated against
/// put-call parity at the end.
///
/// Usage: blackscholes_portfolio [--options 50000] [--units 3]

#include <cmath>
#include <cstdio>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/thread_engine.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto n_options =
      static_cast<std::size_t>(cli.get_int("options", 50'000));
  const auto units = static_cast<std::size_t>(cli.get_int("units", 3));

  apps::BlackScholesWorkload portfolio(n_options);

  rt::ThreadEngineOptions opts;
  opts.slowdowns.clear();
  for (std::size_t u = 0; u < units; ++u)
    opts.slowdowns.push_back(1.0 + 1.5 * static_cast<double>(u));
  rt::ThreadEngine engine(opts);

  core::PlbHecScheduler plb;
  std::printf("Pricing %zu options on %zu emulated-heterogeneous threads "
              "(slowdowns 1.0x..%.1fx)...\n",
              n_options, units, opts.slowdowns.back());
  const rt::RunResult r = engine.run(portfolio, plb);
  if (!r.ok) {
    std::printf("run failed: %s\n", r.error.c_str());
    return 1;
  }

  Table t({"Unit", "slowdown", "grains", "share", "tasks"});
  const auto shares = metrics::processed_shares(r);
  for (const auto& u : r.units)
    t.row()
        .add(u.name)
        .add(opts.slowdowns[u.id], 1)
        .add(r.unit_stats[u.id].grains)
        .add(shares[u.id], 3)
        .add(r.unit_stats[u.id].tasks);
  t.print();
  std::printf("wall time %.3f s, selections %zu, probe rounds %zu\n",
              r.makespan, plb.stats().solves, plb.stats().probe_rounds);

  // Validate: put-call parity must hold for every priced option.
  double worst = 0.0;
  for (std::size_t i = 0; i < n_options; ++i) {
    const auto& q = portfolio.quotes()[i];
    const auto& p = portfolio.prices()[i];
    const double parity =
        p.call - p.put - (q.spot - q.strike * std::exp(-q.rate *
                                                       q.expiry_years));
    worst = std::max(worst, std::fabs(parity));
  }
  std::printf("max put-call parity violation: %.3e %s\n", worst,
              worst < 1e-8 ? "(OK)" : "(FAIL)");
  return worst < 1e-8 ? 0 : 1;
}
