/// \file multi_job_service.cpp
/// The multi-tenant service layer in action: several jobs of mixed kinds
/// and priorities arrive over time, the JobManager leases processing units
/// across them under the fairness floor, and completed jobs' performance
/// profiles are persisted so later jobs of the same kind warm-start their
/// modeling phase (watch the probing-blocks columns).
///
/// Usage: multi_job_service [--machines M] [--seed S] [--store PATH]

#include <cstdio>
#include <memory>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/svc/job_manager.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto machines = static_cast<std::size_t>(cli.get_int("machines", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string store_path = cli.get("store", "");

  sim::SimCluster cluster(sim::scenario(machines));

  svc::ServiceOptions options;
  options.seed = seed;
  options.store_path = store_path;
  svc::JobManager manager(cluster, options);

  // A mixed trace: two matmul tenants (the second warm-starts from the
  // first's persisted profile), a Black-Scholes burst, and a low-priority
  // straggler admitted behind them.
  const auto matmul = [](std::size_t n) {
    return [n] { return std::make_unique<apps::MatMulWorkload>(n); };
  };
  const auto blackscholes = [](std::size_t n) {
    return [n] { return std::make_unique<apps::BlackScholesWorkload>(n); };
  };
  manager.submit({"mm-0", "matmul-1024", svc::PriorityClass::kNormal, 0.0,
                  matmul(1024)});
  manager.submit({"bs-0", "bs-200k", svc::PriorityClass::kHigh, 0.05,
                  blackscholes(200'000)});
  manager.submit({"mm-1", "matmul-1024", svc::PriorityClass::kNormal, 0.4,
                  matmul(1024)});
  manager.submit({"bs-low", "bs-400k", svc::PriorityClass::kLow, 0.5,
                  blackscholes(400'000)});

  const svc::ServiceResult result = manager.run();
  if (!result.ok) {
    std::printf("service failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("store: %s, makespan %.4f s, utilization %.1f%%\n",
              svc::to_string(result.store_status), result.makespan,
              100.0 * result.utilization);
  std::printf("leases granted %zu, revoked %zu, restarts %zu\n\n",
              result.leases_granted, result.leases_revoked,
              result.scheduler_restarts);

  Table table({"Job", "Prio", "Arrive", "Wait", "Turnaround", "Probes",
               "Saved", "Warm hit/miss"});
  for (const svc::JobOutcome& job : result.jobs) {
    table.row()
        .add(job.name)
        .add(svc::to_string(job.priority))
        .add(job.arrival, 2)
        .add(job.queue_wait(), 3)
        .add(job.turnaround(), 3)
        .add(job.probe_blocks)
        .add(job.probe_blocks_saved)
        .add(std::to_string(job.warm_hits) + "/" +
             std::to_string(job.warm_misses));
  }
  table.print();
  return 0;
}
