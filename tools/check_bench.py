#!/usr/bin/env python3
"""Bench-JSON regression gate.

Compares a freshly produced bench JSON (bench_kernels / bench_fit /
bench_observe --smoke output) against the committed baseline in
bench/results/ and fails when a machine-independent *ratio* has
collapsed or a correctness residual has blown up.

Absolute timings (``*_us``, ``*gflops``) and machine facts
(``hardware_concurrency``) are machine-dependent and are only checked
structurally (key present, right type). Ratio keys are compared with
generous floors -- CI machines are noisy and slower than the machine
that produced the committed numbers; the gate is meant to catch "the
optimization is gone", not a 20% wobble:

* ``speedup``              fresh >= 0.20 x baseline
* ``overhead_ratio``       fresh >= 0.05 x baseline
* ``parallel_speedup``     fresh >= 0.05 x baseline
* ``cache_speedup``        fresh >= 0.05 x baseline
* ``overhead_pct``         fresh <= max(2.0, 2 x baseline)  (cost, lower=better)
* ``max_rel_diff``         fresh <= max(1e-6, 100 x baseline)
* ``max_abs_diff``         fresh <= max(1e-6, 100 x baseline)
* ``probing_saved_ratio``  fresh >= 0.25 x baseline  (bench_service:
  probing blocks the warm start saved relative to the cold run's total)
* ``transfer_r2``          fresh >= 0.75 x baseline  (bench_net: G_p(x)
  fit quality over measured loopback wire timings)
* ``sharded_speedup``      fresh >= 0.50 x baseline  (bench_service:
  wall-clock of the single event loop over the sharded coordinator on
  the 10k-job trace; wall-clock is noisy, so the floor only catches the
  sharded path becoming catastrophically slower than the classic loop)

Tail-latency keys from the 10k-job trace (``stretch_p50/p95/p99``,
``queue_wait_p50/p95/p99``) are *virtual-time* and deterministic for a
given build, but legitimately move when scheduler policy changes; they
carry a ceiling of ``max(abs_slack, 1.5 x baseline)`` (lower = better,
and the absolute slack keeps near-zero queue waits from tripping on
noise-sized absolute shifts).

``warm_vs_cold_makespan_ratio`` (bench_service) carries an *absolute*
1.05 ceiling: the warm start must never cost more than 5% makespan over
the cold run on the same trace, independent of the baseline.

``pipelined_vs_sync_makespan_ratio`` (bench_net) carries an *absolute*
0.75 ceiling independent of the baseline: the pipelined data plane must
beat the synchronous protocol by at least 25% on the machine running
the gate, not merely stay in the baseline's neighborhood.

``bench_matrix`` JSONs (the scenario-grid chaos harness) additionally
pass through :class:`WinRateGate`, which is *absolute* rather than
baseline-relative: ``win_rate`` (the fraction of grid cells where
PLB-HeC beats or ties the best of the four baselines) must stay at or
above 0.40, ``lost_grain_violations`` must be exactly 0 -- a fault
script may requeue work but must never lose a grain -- and
``replay_identical`` must be true (the harness re-runs its first cell
from the cell id alone and byte-compares the row). When the gate
fails it prints the exact replay command for every offending cell
(``./build/bench/bench_matrix --cell '<id>'``) so the failure
reproduces locally from the CI log alone. Per-cell makespans are
deterministic per build but drift across compilers, so they are not
identity-checked; the cell ids, grid shape and scheduler roster are.

``bench_kdisp`` JSONs (kernel-dispatch registry + workload families)
pass through :class:`KdispGate`, also absolute: every family must fit
its simulated device curve with ``R^2 >= 0.95`` on at least one unit
class, at least two distinct winning basis subsets must appear across
the families (``distinct_subsets``), the reduction families must stay
byte-identical across ISA variants (``isa_identical``), and on a host
with vector units (``simd_host``) the best registered variant must
beat forced-scalar by ``best_isa_speedup >= 1.3`` on at least one
family. Per-variant timings and the resolved ISA names are
machine-dependent and unchecked beyond structure; the gemm row's
``max_rel_diff`` (the documented FMA exception) rides the usual
residual ceiling.

``bench_adapt`` JSONs (the online drift-adaptation subsystem) pass
through :class:`AdaptGate`, also absolute: on the virtual-time
``step-throttle`` cell the adaptive scheduler must finish in at most
0.90 of the fit-once scheduler's makespan (``adaptive_vs_fitonce``),
the first detection must land within 0.30 of the undrifted makespan
after the onset (``detection_latency_fraction``), the re-probe ladder
must stay confined to the drifted unit (``reprobe_confined``), at
least one trip must fire, and every cell must finish every grain.
The ramp and transient cells report the same counters but only ride
the baseline-relative compare; the ThreadEngine section's wall-clock
``thread_*_us`` fields are machine-dependent and unchecked.

Identity keys (``n``, ``samples``, ``lanes``, ``units``, ...) and the
overall JSON structure must match exactly, so a silently shrunk sweep
also fails the gate. For bench_service the arrival trace itself is
identity-checked (``trace_kinds``, ``trace_priorities``, ``jobs``,
``replay_identical``): the fixed-seed trace must replay structurally
unchanged, and the two warm replays must have agreed exactly. The
10k-job trace is identity-checked on its shape (``trace10k_jobs``,
``trace10k_shards``) but *not* on ``trace10k_order_digest``: the digest
is deterministic per build yet moves with any scheduler-policy change,
so it is published for replay debugging rather than gated. For
bench_net the correctness facts are identity-checked
(``bit_identical``, ``lost_grains``, ``demoted``, and their
``pipeline_*`` twins): the distributed product must stay bit-identical
under both protocols and both worker-kill runs must keep losing zero
grains.

Usage:  check_bench.py BASELINE.json FRESH.json [more pairs ...]
        check_bench.py --self-test
Exit:   0 all gates pass, 1 otherwise (every violation is printed).
"""

import json
import sys

# key -> (kind, factor); kind "floor" = fresh >= factor * base,
# "ceil" = fresh <= max(abs_floor, factor * base).
RATIO_GATES = {
    "speedup": ("floor", 0.20),
    "overhead_ratio": ("floor", 0.05),
    "parallel_speedup": ("floor", 0.05),
    "cache_speedup": ("floor", 0.05),
    "probing_saved_ratio": ("floor", 0.25),
    "transfer_r2": ("floor", 0.75),
    "sharded_speedup": ("floor", 0.50),
}
CEIL_GATES = {
    "overhead_pct": 2.0,  # abs ceiling; recording must stay under 2%
    "max_rel_diff": 1e-6,
    "max_abs_diff": 1e-6,
}
# Tail-latency ceilings (virtual time, lower = better):
# fresh <= max(abs_slack, factor * base). The absolute slack keeps
# near-zero baselines (an idle-ish queue wait) from failing on tiny
# absolute shifts.
TAIL_GATES = {
    "stretch_p50": (1.0, 1.5),
    "stretch_p95": (1.0, 1.5),
    "stretch_p99": (1.0, 1.5),
    "queue_wait_p50": (1.0, 1.5),
    "queue_wait_p95": (1.0, 1.5),
    "queue_wait_p99": (1.0, 1.5),
}
# Hard absolute ceilings: fresh <= ceiling regardless of the baseline.
# A perf claim the repo makes unconditionally, not a drift guard.
ABS_CEIL_GATES = {
    "pipelined_vs_sync_makespan_ratio": 0.75,
    "warm_vs_cold_makespan_ratio": 1.05,
}
class WinRateGate:
    """Absolute gate for bench_matrix (scenario-grid chaos harness) JSONs.

    Unlike the drift gates above, nothing here is relative to the
    committed baseline: the grid's claims hold on every machine or the
    gate fails. Three clauses:

    * ``win_rate >= FLOOR`` -- PLB-HeC beats-or-ties the best baseline
      on at least this fraction of grid cells (committed smoke baseline
      sits at 0.45; the floor leaves one cell of cross-compiler slack).
    * ``lost_grain_violations == 0`` and every row's ``lost_grains == 0``
      -- faults may requeue in-flight work, never lose it.
    * ``replay_identical`` is true -- the harness's own proof that a
      cell re-run from its id reproduces its row byte-for-byte.

    Every offending cell's replay command is printed so a CI failure
    reproduces locally with one copy-paste.
    """

    FLOOR = 0.40

    @staticmethod
    def _replay(row):
        return row.get("replay", "./build/bench/bench_matrix --cell '%s'"
                       % row.get("cell", "?"))

    def check(self, doc, errors):
        rows = doc.get("rows")
        missing = [k for k in ("win_rate", "lost_grain_violations",
                               "replay_identical", "rows")
                   if k not in doc]
        if missing or not isinstance(rows, list):
            fail(errors, "bench_matrix",
                 f"summary keys missing or malformed: {missing or 'rows'}")
            return
        if doc["lost_grain_violations"] != 0:
            fail(errors, "bench_matrix",
                 f"{doc['lost_grain_violations']} lost-grain violation(s)")
        for row in rows:
            if row.get("lost_grains", 0) != 0:
                fail(errors, f"bench_matrix.{row.get('cell', '?')}",
                     f"{row['lost_grains']} grain(s) lost; replay: "
                     f"{self._replay(row)}")
        if not doc["replay_identical"]:
            fail(errors, "bench_matrix",
                 "replay_identical is false: a cell re-run from its id "
                 "diverged from its row; replay: " +
                 (self._replay(rows[0]) if rows else "?"))
        if doc["win_rate"] < self.FLOOR:
            fail(errors, "bench_matrix",
                 f"win_rate {doc['win_rate']:.2f} below absolute floor "
                 f"{self.FLOOR:.2f}; losing cells:")
            for row in rows:
                if not row.get("plb_win", False):
                    fail(errors, f"bench_matrix.{row.get('cell', '?')}",
                         f"plb/best={row.get('plb_vs_best', float('nan')):.3f}"
                         f" vs {row.get('best_baseline', '?')}; replay: "
                         f"{self._replay(row)}")


class KdispGate:
    """Absolute gate for bench_kdisp (kernel-dispatch registry) JSONs.

    The repo's dispatch claims hold on every machine, not relative to
    the committed baseline:

    * every family fits its simulated device curve with ``R^2 >=
      R2_FLOOR`` on at least one unit class (CPU or GPU) -- the profile
      fitter can actually learn each family's curve;
    * ``distinct_subsets >= SUBSET_FLOOR`` -- the families are not four
      copies of one profile: at least two different winning basis
      subsets appear across {spmv, stencil, nbody, matmul};
    * ``isa_identical`` is true -- the reduction families produced
      byte-identical results under forced-scalar and best-ISA dispatch
      (gemm is the documented FMA exception, checked by its
      ``max_rel_diff`` residual ceiling instead);
    * on a host with vector units (``simd_host``), the best registered
      variant beats forced-scalar by ``best_isa_speedup >=
      SPEEDUP_FLOOR`` on at least one family. Scalar-only hosts skip
      this clause: there the best variant *is* the scalar one.
    """

    R2_FLOOR = 0.95
    SUBSET_FLOOR = 2
    SPEEDUP_FLOOR = 1.3

    def check(self, doc, errors):
        missing = [k for k in ("fit", "distinct_subsets", "best_isa_speedup",
                               "isa_identical", "simd_host")
                   if k not in doc]
        if missing or not isinstance(doc.get("fit"), list):
            fail(errors, "bench_kdisp",
                 f"summary keys missing or malformed: {missing or 'fit'}")
            return
        for row in doc["fit"]:
            best = max(row.get("cpu_r2", 0.0), row.get("gpu_r2", 0.0))
            if best < self.R2_FLOOR:
                fail(errors, f"bench_kdisp.{row.get('family', '?')}",
                     f"no unit class fits with R^2 >= {self.R2_FLOOR} "
                     f"(best {best:.3f})")
        if doc["distinct_subsets"] < self.SUBSET_FLOOR:
            fail(errors, "bench_kdisp",
                 f"only {doc['distinct_subsets']} distinct winning basis "
                 f"subset(s) across the families (need "
                 f">= {self.SUBSET_FLOOR})")
        if not doc["isa_identical"]:
            fail(errors, "bench_kdisp",
                 "isa_identical is false: a reduction family's forced-scalar "
                 "and best-ISA variants diverged byte-wise")
        if doc["simd_host"] and doc["best_isa_speedup"] < self.SPEEDUP_FLOOR:
            fail(errors, "bench_kdisp",
                 f"best-ISA speedup {doc['best_isa_speedup']:.2f} below "
                 f"absolute floor {self.SPEEDUP_FLOOR} on a SIMD host")


class AdaptGate:
    """Absolute gate for bench_adapt (drift-adaptation) JSONs.

    The drift subsystem's claims hold on every machine (virtual-time sim
    cells; the ThreadEngine section is wall-clock and unchecked):

    * on the ``step-throttle`` cell the adaptive scheduler's makespan is
      at most ``RATIO_CEIL`` of the fit-once scheduler's on the same
      trace -- adapting must actually pay;
    * the step cell's first detection lands within ``LATENCY_CEIL`` of
      the undrifted makespan after the drift onset (the censored
      overdue-block path keeps this bounded even when the throttled
      block itself runs for most of the run);
    * the step cell's re-probe is confined to the drifted unit: the
      ladder-block counter summed over every undrifted unit is zero
      (``reprobe_confined``). Other cells report their counters but are
      not confinement-gated -- the ramp legitimately re-probes a second
      unit whose model error shifts when the workhorse collapses;
    * the step cell tripped at least once, every cell's runs finished,
      and no cell lost a grain.
    """

    RATIO_CEIL = 0.90
    LATENCY_CEIL = 0.30

    def check(self, doc, errors):
        cells = doc.get("cells")
        missing = [k for k in ("cells", "all_ok", "lost_grains",
                               "drift_detections_total") if k not in doc]
        if missing or not isinstance(cells, list):
            fail(errors, "bench_adapt",
                 f"summary keys missing or malformed: {missing or 'cells'}")
            return
        if not doc["all_ok"]:
            fail(errors, "bench_adapt", "a run did not finish (all_ok false)")
        if doc["lost_grains"] != 0:
            fail(errors, "bench_adapt",
                 f"{doc['lost_grains']} grain(s) lost across the cells")
        step = None
        for cell in cells:
            name = cell.get("cell", "?")
            if name == "step-throttle":
                step = cell
            if not cell.get("run_ok", False):
                fail(errors, f"bench_adapt.{name}", "run_ok is false")
            if cell.get("lost_grains", 0) != 0:
                fail(errors, f"bench_adapt.{name}",
                     f"{cell['lost_grains']} grain(s) lost")
        if step is None:
            fail(errors, "bench_adapt", "step-throttle cell missing")
            return
        if step.get("drift_detections", 0) < 1:
            fail(errors, "bench_adapt.step-throttle",
                 "no drift detection on the step throttle")
        if step.get("adaptive_vs_fitonce", 1e9) > self.RATIO_CEIL:
            fail(errors, "bench_adapt.step-throttle",
                 f"adaptive/fitonce makespan ratio "
                 f"{step.get('adaptive_vs_fitonce'):.3f} above absolute "
                 f"ceiling {self.RATIO_CEIL}")
        frac = step.get("detection_latency_fraction", -1.0)
        if frac < 0.0 or frac > self.LATENCY_CEIL:
            fail(errors, "bench_adapt.step-throttle",
                 f"detection latency fraction {frac:.3f} outside "
                 f"(0, {self.LATENCY_CEIL}]")
        if not step.get("reprobe_confined", False):
            fail(errors, "bench_adapt.step-throttle",
                 "re-probe ladder touched an undrifted unit")


# Machine-dependent values: type-checked only.
IGNORED_SUFFIXES = ("_us", "gflops")
IGNORED_KEYS = {"hardware_concurrency", "reps", "genes", "events"}
# Sweep-identity keys: must be exactly equal.
IDENTITY_KEYS = {"n", "samples", "lanes", "units", "samples_per_unit",
                 "benchmark", "compiled_in", "makespan_equal",
                 "jobs", "seed", "trace_kinds", "trace_priorities",
                 "replay_identical", "trace10k_jobs", "trace10k_shards",
                 "curve_n", "dist_n", "kill_grains", "transfer_samples",
                 "payload_min_bytes", "payload_max_bytes",
                 "bit_identical", "dist_total_grains",
                 "dist_grains_counted", "lost_grains", "demoted",
                 "kill_executed_grains",
                 "pipeline_depth", "pipeline_units", "pipeline_grains",
                 "pipeline_chunk_grains", "pipeline_grains_exact",
                 "pipeline_bit_identical", "pipeline_demoted",
                 "pipeline_lost_grains",
                 "pipeline_kill_executed_grains",
                 # bench_matrix grid identity: the cells themselves, the
                 # grid shape and the scheduler roster may not silently
                 # change (makespans and win bits may drift; the absolute
                 # WinRateGate below owns those).
                 "cell", "cells", "mode", "schedulers", "tie_tolerance",
                 "total_grains", "replay",
                 # bench_kdisp identity: the family roster and the
                 # cross-variant bit-identity claim hold on every machine
                 # (per-variant timings and resolved ISAs do not and are
                 # left unkeyed).
                 "family", "isa_identical", "variants"}


def fail(errors, path, message):
    errors.append(f"  {path}: {message}")


def is_ignored(key):
    return key in IGNORED_KEYS or any(key.endswith(s) for s in IGNORED_SUFFIXES)


def compare(base, fresh, path, errors):
    if type(base) is not type(fresh) and not (
            isinstance(base, (int, float)) and isinstance(fresh, (int, float))):
        fail(errors, path, f"type changed: {type(base).__name__} -> "
                           f"{type(fresh).__name__}")
        return
    if isinstance(base, dict):
        if set(base) != set(fresh):
            missing = sorted(set(base) - set(fresh))
            extra = sorted(set(fresh) - set(base))
            fail(errors, path, f"keys changed (missing={missing}, "
                               f"extra={extra})")
            return
        for key in base:
            compare(base[key], fresh[key], f"{path}.{key}", errors)
        return
    if isinstance(base, list):
        if len(base) != len(fresh):
            fail(errors, path, f"sweep length {len(base)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            compare(b, f, f"{path}[{i}]", errors)
        return

    key = path.rsplit(".", 1)[-1].split("[")[0]
    if key in IDENTITY_KEYS:
        if base != fresh:
            fail(errors, path, f"identity value changed: {base!r} -> "
                               f"{fresh!r}")
        return
    if is_ignored(key):
        return
    if key in RATIO_GATES:
        _, factor = RATIO_GATES[key]
        floor = factor * base
        if fresh < floor:
            fail(errors, path, f"ratio collapsed: {fresh:.3g} < "
                               f"{floor:.3g} (= {factor} x baseline "
                               f"{base:.3g})")
        return
    if key in CEIL_GATES:
        ceiling = max(CEIL_GATES[key], 100.0 * base) \
            if key.startswith("max_") else max(CEIL_GATES[key], 2.0 * base)
        if fresh > ceiling:
            fail(errors, path, f"residual blew up: {fresh:.3g} > "
                               f"{ceiling:.3g} (baseline {base:.3g})")
        return
    if key in TAIL_GATES:
        abs_slack, factor = TAIL_GATES[key]
        ceiling = max(abs_slack, factor * base)
        if fresh > ceiling:
            fail(errors, path, f"tail regressed: {fresh:.3g} > "
                               f"{ceiling:.3g} (= max({abs_slack}, "
                               f"{factor} x baseline {base:.3g}))")
        return
    if key in ABS_CEIL_GATES:
        ceiling = ABS_CEIL_GATES[key]
        if fresh > ceiling:
            fail(errors, path, f"perf claim broken: {fresh:.3g} > "
                               f"{ceiling:.3g} (absolute ceiling; "
                               f"baseline {base:.3g})")
        return
    # Unknown numeric/string key: tolerated, so adding new fields to a
    # bench JSON does not require touching this gate (removing fields
    # still fails the structural check above).


def check_pair(base, fresh, label):
    """Full gate for one baseline/fresh pair: structural + drift
    compare, plus the absolute WinRateGate for bench_matrix JSONs.
    Returns the list of violation messages (empty = pass)."""
    errors = []
    compare(base, fresh, label, errors)
    if fresh.get("benchmark") == "bench_matrix":
        WinRateGate().check(fresh, errors)
    if fresh.get("benchmark") == "bench_kdisp":
        KdispGate().check(fresh, errors)
    if fresh.get("benchmark") == "bench_adapt":
        AdaptGate().check(fresh, errors)
    return errors


def load_json(path, role):
    """Loads one bench JSON, or returns (None, message) naming the exact
    file and the likely cause -- a missing fresh file usually means the
    bench binary crashed before writing its output."""
    try:
        with open(path) as f:
            return json.load(f), None
    except FileNotFoundError:
        hint = ("was it committed to bench/results/?" if role == "baseline"
                else "did the bench binary run and write its --out file?")
        return None, f"{role} JSON missing: {path} ({hint})"
    except OSError as exc:
        return None, f"cannot read {role} JSON {path}: {exc}"
    except json.JSONDecodeError as exc:
        return None, (f"{role} JSON unparseable: {path}: {exc} "
                      "(truncated write or non-JSON output?)")


def self_test():
    """Pytest-free sanity check of the gate itself (run by CI).

    Each case runs compare() on a baseline/fresh pair and asserts whether
    it must flag a violation. Catches regressions in the gate logic
    before a silently-green gate waves a real regression through.
    """
    baseline = {
        "benchmark": "bench_service",
        "jobs": 12, "units": 4, "seed": 42,
        "trace_kinds": "matmul-1024,bs-300k",
        "trace_priorities": "high,normal",
        "replay_identical": True,
        "probing_saved_ratio": 0.98,
        "speedup": 4.0,
        "max_rel_diff": 1e-12,
        "run_us": 120.0,
        "arrival_times": [0.1, 0.2],
        # 10k-trace fields (bench_service sharded-coordinator section).
        "trace10k_jobs": 10000,
        "trace10k_shards": 4,
        "trace10k_order_digest": "8806bf5d731c1879",
        "stretch_p99": 5134.4,
        "queue_wait_p50": 0.17,
        "queue_wait_p99": 268.2,
        "sharded_speedup": 1.02,
        "warm_vs_cold_makespan_ratio": 0.99,
        # bench_net-shaped facts ride along in the same baseline so the
        # transport gates are exercised by the same case table.
        "transfer_r2": 0.90,
        "bit_identical": True,
        "lost_grains": 0,
        "demoted": True,
        "pipelined_vs_sync_makespan_ratio": 0.55,
        "pipeline_grains_exact": True,
        "pipeline_bit_identical": True,
        "pipeline_lost_grains": 0,
        "pipeline_demoted": True,
    }

    def variant(**overrides):
        fresh = dict(baseline)
        fresh.update(overrides)
        return fresh

    dropped = dict(baseline)
    del dropped["probing_saved_ratio"]
    cases = [
        # (label, fresh, must_flag)
        ("identical json passes", variant(), False),
        ("machine-dependent *_us may drift", variant(run_us=9000.0), False),
        ("non-identity floats may wobble",
         variant(arrival_times=[0.1, 0.200001], probing_saved_ratio=0.9),
         False),
        ("collapsed probing_saved_ratio fails",
         variant(probing_saved_ratio=0.01), True),
        ("collapsed speedup fails", variant(speedup=0.1), True),
        ("blown-up residual fails", variant(max_rel_diff=0.5), True),
        ("changed arrival-trace kinds fail",
         variant(trace_kinds="matmul-1024,grn-10k"), True),
        ("changed priorities fail",
         variant(trace_priorities="low,normal"), True),
        ("shrunk job count fails", variant(jobs=6), True),
        ("diverged replay fails", variant(replay_identical=False), True),
        ("dropped key fails structurally", dropped, True),
        ("shrunk sweep fails", variant(arrival_times=[0.1]), True),
        ("wobbling transfer_r2 passes", variant(transfer_r2=0.82), False),
        ("collapsed transfer_r2 fails", variant(transfer_r2=0.3), True),
        ("lost grains fail", variant(lost_grains=17), True),
        ("diverged distributed result fails",
         variant(bit_identical=False), True),
        ("undetected dead worker fails", variant(demoted=False), True),
        ("makespan ratio 0.74 under absolute ceiling passes even far "
         "from baseline",
         variant(pipelined_vs_sync_makespan_ratio=0.74), False),
        ("makespan ratio 0.76 over absolute ceiling fails",
         variant(pipelined_vs_sync_makespan_ratio=0.76), True),
        ("lost pipelined grains fail", variant(pipeline_lost_grains=3),
         True),
        ("diverged pipelined distributed result fails",
         variant(pipeline_bit_identical=False), True),
        ("incomplete pipeline comparison fails",
         variant(pipeline_grains_exact=False), True),
        ("undetected dead pipelined worker fails",
         variant(pipeline_demoted=False), True),
        ("tail within 1.5x ceiling passes",
         variant(stretch_p99=7000.0), False),
        ("tail beyond 1.5x ceiling fails",
         variant(stretch_p99=8000.0), True),
        ("near-zero queue wait rides the absolute slack",
         variant(queue_wait_p50=0.9), False),
        ("queue-wait tail beyond ceiling fails",
         variant(queue_wait_p99=450.0), True),
        ("wobbling sharded_speedup passes",
         variant(sharded_speedup=0.75), False),
        ("collapsed sharded_speedup fails",
         variant(sharded_speedup=0.3), True),
        ("warm run 4% over cold passes the absolute ceiling",
         variant(warm_vs_cold_makespan_ratio=1.04), False),
        ("warm run 6% over cold fails the absolute ceiling",
         variant(warm_vs_cold_makespan_ratio=1.06), True),
        ("changed 10k digest is informational, not gated",
         variant(trace10k_order_digest="0000000000000000"), False),
        ("shrunk 10k trace fails", variant(trace10k_jobs=1000), True),
        ("changed shard count fails", variant(trace10k_shards=1), True),
    ]
    # bench_matrix cases exercise the absolute WinRateGate on top of the
    # structural compare, via the same check_pair() entry point main uses.
    def matrix_row(cell, win, vs_best, lost=0):
        return {"cell": cell, "units": 4, "total_grains": 8192,
                "plb_win": win, "plb_vs_best": vs_best,
                "best_baseline": "HDSS", "lost_grains": lost,
                "grains_requeued": 0, "failed_units": 0, "rebalances": 1,
                "solves": 3, "probe_overhead": 0.11,
                "makespan_plb_hec_s": 1.0 * vs_best,
                "makespan_hdss_s": 1.0,
                "replay": f"./build/bench/bench_matrix --cell '{cell}'"}

    matrix_base = {
        "benchmark": "bench_matrix", "mode": "smoke",
        "schedulers": "PLB-HeC,HDSS,Acosta,Greedy,StaticProfile",
        "cells": 2, "tie_tolerance": 0.02, "wins": 1, "win_rate": 0.5,
        "lost_grain_violations": 0, "replay_identical": True,
        "rows": [matrix_row("u4-mild/regular/none@1", True, 0.97),
                 matrix_row("u8-extreme/mixed/kill1@1", False, 1.1)],
    }

    def matrix_variant(rows=None, **overrides):
        fresh = dict(matrix_base)
        if rows is not None:
            fresh["rows"] = rows
        fresh.update(overrides)
        return fresh

    matrix_cases = [
        ("identical matrix passes", matrix_variant(), False),
        ("makespan drift in a row passes",
         matrix_variant(rows=[matrix_row("u4-mild/regular/none@1", True,
                                         0.99),
                              matrix_base["rows"][1]]), False),
        ("win_rate above absolute floor passes even below baseline",
         matrix_variant(wins=1, win_rate=0.45), False),
        ("win_rate below 0.40 floor fails",
         matrix_variant(wins=0, win_rate=0.3,
                        rows=[matrix_row("u4-mild/regular/none@1", False,
                                         1.05),
                              matrix_base["rows"][1]]), True),
        ("lost-grain violation count fails",
         matrix_variant(lost_grain_violations=1), True),
        ("per-row lost grain fails",
         matrix_variant(rows=[matrix_base["rows"][0],
                              matrix_row("u8-extreme/mixed/kill1@1", False,
                                         1.1, lost=3)]), True),
        ("diverged cell replay fails",
         matrix_variant(replay_identical=False), True),
        ("renamed cell fails identity",
         matrix_variant(rows=[matrix_row("u4-extreme/regular/none@1", True,
                                         0.97),
                              matrix_base["rows"][1]]), True),
        ("shrunk grid fails structurally",
         matrix_variant(rows=[matrix_base["rows"][0]]), True),
        ("changed scheduler roster fails identity",
         matrix_variant(schedulers="PLB-HeC,HDSS"), True),
        ("loosened tie tolerance fails identity",
         matrix_variant(tie_tolerance=0.1), True),
    ]

    # bench_kdisp cases exercise the absolute KdispGate: the R^2 floor,
    # the distinct-subset floor, the cross-variant identity claim and the
    # SIMD-host speedup floor (skipped on scalar-only hosts).
    def kdisp_fit_row(family, cpu_r2, gpu_r2):
        return {"family": family, "curve_n": 24, "cpu_r2": cpu_r2,
                "cpu_terms": "1+x", "gpu_r2": gpu_r2,
                "gpu_terms": "1+x+ln(x)"}

    kdisp_base = {
        "benchmark": "bench_kdisp", "hardware_concurrency": 1,
        "host_isa": "avx512", "effective_isa": "avx512",
        "simd_host": True, "variants": 13,
        "fit": [kdisp_fit_row("spmv", 1.0, 0.99),
                kdisp_fit_row("stencil", 1.0, 0.99),
                kdisp_fit_row("nbody", 1.0, 0.99),
                kdisp_fit_row("matmul", 1.0, 0.99)],
        "fit_r2_min": 0.99, "distinct_subsets": 3,
        "kernels": [
            {"family": "spmv", "variant": "spmv_rows_avx2", "isa": "avx2",
             "scalar_ms": 0.9, "best_ms": 0.7, "kernel_speedup": 1.2,
             "identical": True},
            {"family": "gemm", "variant": "gemm_micro_avx2", "isa": "avx2",
             "scalar_ms": 2.9, "best_ms": 1.3, "kernel_speedup": 2.3,
             "identical": False, "max_rel_diff": 2e-11},
        ],
        "best_isa_speedup": 2.3, "isa_identical": True,
    }

    def kdisp_variant(fit=None, **overrides):
        fresh = dict(kdisp_base)
        if fit is not None:
            fresh["fit"] = fit
        fresh.update(overrides)
        return fresh

    kdisp_cases = [
        ("identical kdisp passes", kdisp_variant(), False),
        ("resolved ISA and timings may differ per machine",
         kdisp_variant(host_isa="avx2", effective_isa="scalar",
                       best_isa_speedup=1.4), False),
        ("family R^2 below floor on both classes fails",
         kdisp_variant(fit=[kdisp_fit_row("spmv", 0.8, 0.9)] +
                       kdisp_base["fit"][1:]), True),
        ("low CPU R^2 passes while the GPU class fits",
         kdisp_variant(fit=[kdisp_fit_row("spmv", 0.5, 0.99)] +
                       kdisp_base["fit"][1:]), False),
        ("collapsed subset diversity fails",
         kdisp_variant(distinct_subsets=1), True),
        ("diverged reduction-family results fail",
         kdisp_variant(isa_identical=False), True),
        ("speedup under floor on a SIMD host fails",
         kdisp_variant(best_isa_speedup=1.1), True),
        ("speedup ~1 on a scalar-only host passes",
         kdisp_variant(simd_host=False, best_isa_speedup=1.0), False),
        ("blown-up gemm residual fails",
         kdisp_variant(kernels=[kdisp_base["kernels"][0],
                                dict(kdisp_base["kernels"][1],
                                     max_rel_diff=0.5)]), True),
        ("renamed family fails identity",
         kdisp_variant(fit=[kdisp_fit_row("spmv2", 1.0, 0.99)] +
                       kdisp_base["fit"][1:]), True),
        ("shrunk variant roster fails identity",
         kdisp_variant(variants=9), True),
    ]

    # bench_adapt cases exercise the absolute AdaptGate: the step cell's
    # makespan-ratio and detection-latency ceilings, its confinement claim
    # and trip floor, plus the no-lost-grain / all-runs-finished facts.
    # Only the step cell is confinement-gated (the ramp's second re-probe
    # is legitimate), and wall-clock ``thread_*_us`` fields are free.
    def adapt_cell(cell, ratio, confined=True, detections=1, latency=0.2,
                   other=0, lost=0, run_ok=True):
        return {"cell": cell, "drift_onset": 0.158,
                "makespan_fitonce": 2.5, "makespan_rebalance": 2.4,
                "makespan_adaptive": 2.5 * ratio,
                "adaptive_vs_fitonce": ratio, "adaptive_vs_rebalance": ratio,
                "drift_detections": detections, "reprobe_swaps": detections,
                "reprobe_blocks_drifted": 2 * detections,
                "reprobe_blocks_other": other,
                "reprobe_confined": confined,
                "detection_latency_s": latency * 0.527,
                "detection_latency_fraction": latency,
                "rebalances_stock": 0,
                "lost_grains": lost, "run_ok": run_ok}

    adapt_base = {
        "benchmark": "bench_adapt", "units": 4, "seed": 42,
        "total_grains": 60000, "drift_unit": 1,
        "drift_onset_fraction": 0.30, "step_factor": 0.02,
        "makespan_nominal": 0.527,
        "cells": [adapt_cell("step-throttle", 0.64),
                  adapt_cell("ramp-throttle", 0.91, confined=False,
                             detections=4, other=2),
                  adapt_cell("transient-cotenant", 1.02)],
        "drift_detections_total": 6, "lost_grains": 0,
        "thread_grains": 24000,
        "thread_wall_nominal_us": 4000000,
        "thread_wall_fitonce_us": 7000000,
        "thread_wall_adaptive_us": 8500000,
        "thread_drift_detections": 0, "thread_reprobe_swaps": 0,
        "thread_reprobe_confined": True, "thread_lost_grains": 0,
        "thread_ok": True, "all_ok": True,
    }

    def adapt_variant(step=None, ramp=None, **overrides):
        fresh = dict(adapt_base)
        cells = list(adapt_base["cells"])
        if step is not None:
            cells[0] = step
        if ramp is not None:
            cells[1] = ramp
        fresh["cells"] = cells
        fresh.update(overrides)
        return fresh

    adapt_cases = [
        ("identical adapt passes", adapt_variant(), False),
        ("machine-dependent thread walls may differ",
         adapt_variant(thread_wall_adaptive_us=12345678,
                       thread_wall_fitonce_us=2222222), False),
        ("step ratio above 0.90 ceiling fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.95)), True),
        ("detection latency above 0.30 fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.64, latency=0.5)),
         True),
        ("unconfined step re-probe fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.64, confined=False,
                                       other=3)), True),
        ("undetected step drift fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.64, detections=0)),
         True),
        ("unconfined ramp cell alone passes",
         adapt_variant(ramp=adapt_cell("ramp-throttle", 0.88, confined=False,
                                       detections=5, other=4)), False),
        ("lost grain in any cell fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.64, lost=1)), True),
        ("unfinished run fails",
         adapt_variant(step=adapt_cell("step-throttle", 0.64, run_ok=False)),
         True),
        ("all_ok false fails", adapt_variant(all_ok=False), True),
        ("missing step cell fails",
         adapt_variant(cells=adapt_base["cells"][1:]), True),
    ]

    failures = 0
    for table, base_doc in ((cases, baseline), (matrix_cases, matrix_base),
                            (kdisp_cases, kdisp_base),
                            (adapt_cases, adapt_base)):
        for label, fresh, must_flag in table:
            flagged = bool(check_pair(base_doc, fresh, "self-test"))
            status = "ok" if flagged == must_flag else "FAIL"
            if flagged != must_flag:
                failures += 1
            print(f"  {status}: {label} (flagged={flagged}, "
                  f"expected={must_flag})")

    # The missing-file path must fail loudly, not crash.
    rc = main(["check_bench.py", "/nonexistent-baseline.json",
               "/nonexistent-fresh.json"])
    status = "ok" if rc == 1 else "FAIL"
    if rc != 1:
        failures += 1
    print(f"  {status}: missing bench JSON exits 1 (rc={rc})")

    total = (len(cases) + len(matrix_cases) + len(kdisp_cases) +
             len(adapt_cases) + 1)
    if failures:
        print(f"self-test FAILED ({failures} case(s))")
        return 1
    print(f"self-test OK ({total} cases)")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 3 or len(argv) % 2 == 0:
        print(__doc__)
        return 2
    failures = 0
    for i in range(1, len(argv), 2):
        base_path, fresh_path = argv[i], argv[i + 1]
        base, base_err = load_json(base_path, "baseline")
        fresh, fresh_err = load_json(fresh_path, "fresh")
        if base_err or fresh_err:
            print(f"FAIL {base_path} vs {fresh_path}:")
            for err in (base_err, fresh_err):
                if err:
                    print(f"  {err}")
            failures += 1
            continue
        errors = check_pair(base, fresh, base.get("benchmark", base_path))
        if errors:
            print(f"FAIL {fresh_path} regressed against {base_path}:")
            print("\n".join(errors))
            failures += 1
        else:
            print(f"OK   {fresh_path} within tolerance of {base_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
