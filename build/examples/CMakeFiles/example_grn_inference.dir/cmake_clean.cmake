file(REMOVE_RECURSE
  "CMakeFiles/example_grn_inference.dir/grn_inference.cpp.o"
  "CMakeFiles/example_grn_inference.dir/grn_inference.cpp.o.d"
  "grn_inference"
  "grn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
