# Empty dependencies file for example_grn_inference.
# This may be replaced when dependencies are built.
