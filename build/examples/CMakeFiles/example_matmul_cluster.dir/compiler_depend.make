# Empty compiler generated dependencies file for example_matmul_cluster.
# This may be replaced when dependencies are built.
