file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_cluster.dir/matmul_cluster.cpp.o"
  "CMakeFiles/example_matmul_cluster.dir/matmul_cluster.cpp.o.d"
  "matmul_cluster"
  "matmul_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
