# Empty compiler generated dependencies file for example_blackscholes_portfolio.
# This may be replaced when dependencies are built.
