file(REMOVE_RECURSE
  "CMakeFiles/example_blackscholes_portfolio.dir/blackscholes_portfolio.cpp.o"
  "CMakeFiles/example_blackscholes_portfolio.dir/blackscholes_portfolio.cpp.o.d"
  "blackscholes_portfolio"
  "blackscholes_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_blackscholes_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
