# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fit[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
