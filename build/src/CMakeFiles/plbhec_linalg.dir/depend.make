# Empty dependencies file for plbhec_linalg.
# This may be replaced when dependencies are built.
