
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/linalg/blas.cpp" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/blas.cpp.o" "gcc" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/blas.cpp.o.d"
  "/root/repo/src/plbhec/linalg/cholesky.cpp" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/cholesky.cpp.o.d"
  "/root/repo/src/plbhec/linalg/lu.cpp" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/lu.cpp.o.d"
  "/root/repo/src/plbhec/linalg/matrix.cpp" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/matrix.cpp.o.d"
  "/root/repo/src/plbhec/linalg/qr.cpp" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/plbhec_linalg.dir/plbhec/linalg/qr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
