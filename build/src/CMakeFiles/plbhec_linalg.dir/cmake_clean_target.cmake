file(REMOVE_RECURSE
  "libplbhec_linalg.a"
)
