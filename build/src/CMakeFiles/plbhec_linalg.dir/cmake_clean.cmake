file(REMOVE_RECURSE
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/blas.cpp.o"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/blas.cpp.o.d"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/cholesky.cpp.o"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/cholesky.cpp.o.d"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/lu.cpp.o"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/lu.cpp.o.d"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/matrix.cpp.o"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/matrix.cpp.o.d"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/qr.cpp.o"
  "CMakeFiles/plbhec_linalg.dir/plbhec/linalg/qr.cpp.o.d"
  "libplbhec_linalg.a"
  "libplbhec_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
