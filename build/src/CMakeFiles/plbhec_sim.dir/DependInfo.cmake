
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/sim/cluster.cpp" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/cluster.cpp.o.d"
  "/root/repo/src/plbhec/sim/device.cpp" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/device.cpp.o" "gcc" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/device.cpp.o.d"
  "/root/repo/src/plbhec/sim/machine.cpp" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/machine.cpp.o" "gcc" "src/CMakeFiles/plbhec_sim.dir/plbhec/sim/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
