# Empty compiler generated dependencies file for plbhec_sim.
# This may be replaced when dependencies are built.
