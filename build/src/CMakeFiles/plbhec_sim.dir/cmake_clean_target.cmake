file(REMOVE_RECURSE
  "libplbhec_sim.a"
)
