file(REMOVE_RECURSE
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/cluster.cpp.o"
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/cluster.cpp.o.d"
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/device.cpp.o"
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/device.cpp.o.d"
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/machine.cpp.o"
  "CMakeFiles/plbhec_sim.dir/plbhec/sim/machine.cpp.o.d"
  "libplbhec_sim.a"
  "libplbhec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
