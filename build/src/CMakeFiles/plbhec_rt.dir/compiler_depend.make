# Empty compiler generated dependencies file for plbhec_rt.
# This may be replaced when dependencies are built.
