
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/rt/engine.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/engine.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/engine.cpp.o.d"
  "/root/repo/src/plbhec/rt/profile_db.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/profile_db.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/profile_db.cpp.o.d"
  "/root/repo/src/plbhec/rt/scheduler.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/scheduler.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/scheduler.cpp.o.d"
  "/root/repo/src/plbhec/rt/thread_engine.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/thread_engine.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/thread_engine.cpp.o.d"
  "/root/repo/src/plbhec/rt/trace.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/trace.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/trace.cpp.o.d"
  "/root/repo/src/plbhec/rt/workload.cpp" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/workload.cpp.o" "gcc" "src/CMakeFiles/plbhec_rt.dir/plbhec/rt/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
