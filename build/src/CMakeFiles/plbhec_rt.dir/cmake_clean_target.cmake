file(REMOVE_RECURSE
  "libplbhec_rt.a"
)
