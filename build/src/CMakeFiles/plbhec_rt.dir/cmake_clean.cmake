file(REMOVE_RECURSE
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/engine.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/engine.cpp.o.d"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/profile_db.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/profile_db.cpp.o.d"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/scheduler.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/scheduler.cpp.o.d"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/thread_engine.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/thread_engine.cpp.o.d"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/trace.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/trace.cpp.o.d"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/workload.cpp.o"
  "CMakeFiles/plbhec_rt.dir/plbhec/rt/workload.cpp.o.d"
  "libplbhec_rt.a"
  "libplbhec_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
