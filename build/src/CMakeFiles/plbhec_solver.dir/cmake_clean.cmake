file(REMOVE_RECURSE
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/block_selection.cpp.o"
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/block_selection.cpp.o.d"
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/equal_time.cpp.o"
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/equal_time.cpp.o.d"
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/interior_point.cpp.o"
  "CMakeFiles/plbhec_solver.dir/plbhec/solver/interior_point.cpp.o.d"
  "libplbhec_solver.a"
  "libplbhec_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
