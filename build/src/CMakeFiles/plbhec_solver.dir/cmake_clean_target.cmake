file(REMOVE_RECURSE
  "libplbhec_solver.a"
)
