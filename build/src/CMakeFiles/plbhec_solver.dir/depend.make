# Empty dependencies file for plbhec_solver.
# This may be replaced when dependencies are built.
