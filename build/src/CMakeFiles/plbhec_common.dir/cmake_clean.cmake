file(REMOVE_RECURSE
  "CMakeFiles/plbhec_common.dir/plbhec/common/cli.cpp.o"
  "CMakeFiles/plbhec_common.dir/plbhec/common/cli.cpp.o.d"
  "CMakeFiles/plbhec_common.dir/plbhec/common/csv.cpp.o"
  "CMakeFiles/plbhec_common.dir/plbhec/common/csv.cpp.o.d"
  "CMakeFiles/plbhec_common.dir/plbhec/common/rng.cpp.o"
  "CMakeFiles/plbhec_common.dir/plbhec/common/rng.cpp.o.d"
  "CMakeFiles/plbhec_common.dir/plbhec/common/stats.cpp.o"
  "CMakeFiles/plbhec_common.dir/plbhec/common/stats.cpp.o.d"
  "CMakeFiles/plbhec_common.dir/plbhec/common/table.cpp.o"
  "CMakeFiles/plbhec_common.dir/plbhec/common/table.cpp.o.d"
  "libplbhec_common.a"
  "libplbhec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
