# Empty compiler generated dependencies file for plbhec_common.
# This may be replaced when dependencies are built.
