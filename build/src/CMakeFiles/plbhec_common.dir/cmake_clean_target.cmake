file(REMOVE_RECURSE
  "libplbhec_common.a"
)
