
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/common/cli.cpp" "src/CMakeFiles/plbhec_common.dir/plbhec/common/cli.cpp.o" "gcc" "src/CMakeFiles/plbhec_common.dir/plbhec/common/cli.cpp.o.d"
  "/root/repo/src/plbhec/common/csv.cpp" "src/CMakeFiles/plbhec_common.dir/plbhec/common/csv.cpp.o" "gcc" "src/CMakeFiles/plbhec_common.dir/plbhec/common/csv.cpp.o.d"
  "/root/repo/src/plbhec/common/rng.cpp" "src/CMakeFiles/plbhec_common.dir/plbhec/common/rng.cpp.o" "gcc" "src/CMakeFiles/plbhec_common.dir/plbhec/common/rng.cpp.o.d"
  "/root/repo/src/plbhec/common/stats.cpp" "src/CMakeFiles/plbhec_common.dir/plbhec/common/stats.cpp.o" "gcc" "src/CMakeFiles/plbhec_common.dir/plbhec/common/stats.cpp.o.d"
  "/root/repo/src/plbhec/common/table.cpp" "src/CMakeFiles/plbhec_common.dir/plbhec/common/table.cpp.o" "gcc" "src/CMakeFiles/plbhec_common.dir/plbhec/common/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
