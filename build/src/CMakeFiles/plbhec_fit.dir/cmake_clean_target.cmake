file(REMOVE_RECURSE
  "libplbhec_fit.a"
)
