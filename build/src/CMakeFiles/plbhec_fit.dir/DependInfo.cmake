
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/fit/basis.cpp" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/basis.cpp.o" "gcc" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/basis.cpp.o.d"
  "/root/repo/src/plbhec/fit/least_squares.cpp" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/least_squares.cpp.o" "gcc" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/least_squares.cpp.o.d"
  "/root/repo/src/plbhec/fit/model.cpp" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/model.cpp.o" "gcc" "src/CMakeFiles/plbhec_fit.dir/plbhec/fit/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
