file(REMOVE_RECURSE
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/basis.cpp.o"
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/basis.cpp.o.d"
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/least_squares.cpp.o"
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/least_squares.cpp.o.d"
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/model.cpp.o"
  "CMakeFiles/plbhec_fit.dir/plbhec/fit/model.cpp.o.d"
  "libplbhec_fit.a"
  "libplbhec_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
