# Empty compiler generated dependencies file for plbhec_fit.
# This may be replaced when dependencies are built.
