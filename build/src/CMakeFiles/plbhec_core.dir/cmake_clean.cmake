file(REMOVE_RECURSE
  "CMakeFiles/plbhec_core.dir/plbhec/core/plb_hec.cpp.o"
  "CMakeFiles/plbhec_core.dir/plbhec/core/plb_hec.cpp.o.d"
  "libplbhec_core.a"
  "libplbhec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
