file(REMOVE_RECURSE
  "libplbhec_core.a"
)
