# Empty compiler generated dependencies file for plbhec_core.
# This may be replaced when dependencies are built.
