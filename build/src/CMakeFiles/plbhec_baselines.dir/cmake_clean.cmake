file(REMOVE_RECURSE
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/acosta.cpp.o"
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/acosta.cpp.o.d"
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/hdss.cpp.o"
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/hdss.cpp.o.d"
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/static_profile.cpp.o"
  "CMakeFiles/plbhec_baselines.dir/plbhec/baselines/static_profile.cpp.o.d"
  "libplbhec_baselines.a"
  "libplbhec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
