# Empty compiler generated dependencies file for plbhec_baselines.
# This may be replaced when dependencies are built.
