file(REMOVE_RECURSE
  "libplbhec_baselines.a"
)
