file(REMOVE_RECURSE
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/blackscholes.cpp.o"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/blackscholes.cpp.o.d"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/grn.cpp.o"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/grn.cpp.o.d"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/matmul.cpp.o"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/matmul.cpp.o.d"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/synthetic.cpp.o"
  "CMakeFiles/plbhec_apps.dir/plbhec/apps/synthetic.cpp.o.d"
  "libplbhec_apps.a"
  "libplbhec_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
