
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plbhec/apps/blackscholes.cpp" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/blackscholes.cpp.o" "gcc" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/blackscholes.cpp.o.d"
  "/root/repo/src/plbhec/apps/grn.cpp" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/grn.cpp.o" "gcc" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/grn.cpp.o.d"
  "/root/repo/src/plbhec/apps/matmul.cpp" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/matmul.cpp.o" "gcc" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/matmul.cpp.o.d"
  "/root/repo/src/plbhec/apps/synthetic.cpp" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/synthetic.cpp.o" "gcc" "src/CMakeFiles/plbhec_apps.dir/plbhec/apps/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
