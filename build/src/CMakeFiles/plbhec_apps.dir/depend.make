# Empty dependencies file for plbhec_apps.
# This may be replaced when dependencies are built.
