file(REMOVE_RECURSE
  "libplbhec_apps.a"
)
