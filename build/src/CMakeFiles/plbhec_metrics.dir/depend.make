# Empty dependencies file for plbhec_metrics.
# This may be replaced when dependencies are built.
