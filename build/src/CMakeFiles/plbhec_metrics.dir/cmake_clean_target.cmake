file(REMOVE_RECURSE
  "libplbhec_metrics.a"
)
