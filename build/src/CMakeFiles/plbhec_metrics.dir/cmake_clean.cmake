file(REMOVE_RECURSE
  "CMakeFiles/plbhec_metrics.dir/plbhec/metrics/metrics.cpp.o"
  "CMakeFiles/plbhec_metrics.dir/plbhec/metrics/metrics.cpp.o.d"
  "libplbhec_metrics.a"
  "libplbhec_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plbhec_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
