file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_grn.dir/fig4_grn.cpp.o"
  "CMakeFiles/bench_fig4_grn.dir/fig4_grn.cpp.o.d"
  "fig4_grn"
  "fig4_grn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_grn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
