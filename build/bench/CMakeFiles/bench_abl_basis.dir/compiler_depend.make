# Empty compiler generated dependencies file for bench_abl_basis.
# This may be replaced when dependencies are built.
