file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_basis.dir/abl_basis.cpp.o"
  "CMakeFiles/bench_abl_basis.dir/abl_basis.cpp.o.d"
  "abl_basis"
  "abl_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
