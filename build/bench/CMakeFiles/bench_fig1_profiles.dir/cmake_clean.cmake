file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_profiles.dir/fig1_profiles.cpp.o"
  "CMakeFiles/bench_fig1_profiles.dir/fig1_profiles.cpp.o.d"
  "fig1_profiles"
  "fig1_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
