# Empty dependencies file for bench_abl_solver.
# This may be replaced when dependencies are built.
