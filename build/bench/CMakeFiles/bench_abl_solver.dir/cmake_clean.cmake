file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_solver.dir/abl_solver.cpp.o"
  "CMakeFiles/bench_abl_solver.dir/abl_solver.cpp.o.d"
  "abl_solver"
  "abl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
