
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_matmul.cpp" "bench/CMakeFiles/bench_fig4_matmul.dir/fig4_matmul.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_matmul.dir/fig4_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plbhec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plbhec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
