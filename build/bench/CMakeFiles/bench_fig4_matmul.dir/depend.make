# Empty dependencies file for bench_fig4_matmul.
# This may be replaced when dependencies are built.
