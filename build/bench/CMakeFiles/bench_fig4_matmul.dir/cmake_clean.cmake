file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_matmul.dir/fig4_matmul.cpp.o"
  "CMakeFiles/bench_fig4_matmul.dir/fig4_matmul.cpp.o.d"
  "fig4_matmul"
  "fig4_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
