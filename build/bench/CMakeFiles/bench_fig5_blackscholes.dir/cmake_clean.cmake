file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_blackscholes.dir/fig5_blackscholes.cpp.o"
  "CMakeFiles/bench_fig5_blackscholes.dir/fig5_blackscholes.cpp.o.d"
  "fig5_blackscholes"
  "fig5_blackscholes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_blackscholes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
