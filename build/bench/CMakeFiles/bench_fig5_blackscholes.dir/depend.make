# Empty dependencies file for bench_fig5_blackscholes.
# This may be replaced when dependencies are built.
