file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rebalance.dir/abl_rebalance.cpp.o"
  "CMakeFiles/bench_abl_rebalance.dir/abl_rebalance.cpp.o.d"
  "abl_rebalance"
  "abl_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
