# Empty dependencies file for bench_abl_rebalance.
# This may be replaced when dependencies are built.
