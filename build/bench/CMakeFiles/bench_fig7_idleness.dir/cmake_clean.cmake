file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_idleness.dir/fig7_idleness.cpp.o"
  "CMakeFiles/bench_fig7_idleness.dir/fig7_idleness.cpp.o.d"
  "fig7_idleness"
  "fig7_idleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_idleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
