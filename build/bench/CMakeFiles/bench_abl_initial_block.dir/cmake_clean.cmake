file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_initial_block.dir/abl_initial_block.cpp.o"
  "CMakeFiles/bench_abl_initial_block.dir/abl_initial_block.cpp.o.d"
  "abl_initial_block"
  "abl_initial_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_initial_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
