# Empty dependencies file for bench_abl_initial_block.
# This may be replaced when dependencies are built.
