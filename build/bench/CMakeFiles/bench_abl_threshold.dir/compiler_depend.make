# Empty compiler generated dependencies file for bench_abl_threshold.
# This may be replaced when dependencies are built.
