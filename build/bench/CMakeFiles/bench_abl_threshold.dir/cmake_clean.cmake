file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_threshold.dir/abl_threshold.cpp.o"
  "CMakeFiles/bench_abl_threshold.dir/abl_threshold.cpp.o.d"
  "abl_threshold"
  "abl_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
