# Empty dependencies file for bench_fig3_gantt.
# This may be replaced when dependencies are built.
