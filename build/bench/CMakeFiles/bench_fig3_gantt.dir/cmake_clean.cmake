file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gantt.dir/fig3_gantt.cpp.o"
  "CMakeFiles/bench_fig3_gantt.dir/fig3_gantt.cpp.o.d"
  "fig3_gantt"
  "fig3_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
