/// \file workerd_main.cpp
/// plbhec-workerd: the worker-node daemon of the distributed runtime.
/// Listens for a coordinator, rebuilds workloads from their remote_spec
/// strings and executes assigned blocks, shipping results and kernel
/// timings back over the framed TCP protocol (src/plbhec/net/wire.hpp).
///
///   plbhec-workerd --port=7077 --name=node1 --slowdown=2.0
///
/// --port 0 picks an ephemeral port (printed on stdout, for scripts).
/// --slowdown stretches kernel times to emulate a slower node, so a
/// single-host demo cluster still exhibits heterogeneity for the
/// balancer to learn. Runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <ctime>
#include <string>

#include "plbhec/common/cli.hpp"
#include "plbhec/net/workerd.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  plbhec::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "plbhec-workerd: PLB-HeC worker daemon\n"
        "  --port=N       listen port on 127.0.0.1 (default 7077; 0 = "
        "ephemeral)\n"
        "  --name=S       daemon name reported to coordinators (default "
        "hostname-ish)\n"
        "  --slowdown=F   stretch kernel times by F >= 1.0 (default 1.0)\n"
        "  --executor-threads=N  kernel executor pool size behind the "
        "reactor (default 4)\n");
    return 0;
  }

  plbhec::net::WorkerDaemonOptions options;
  options.port =
      static_cast<std::uint16_t>(cli.get_int("port", 7077));
  options.name = cli.get("name", "workerd");
  options.slowdown = cli.get_double("slowdown", 1.0);
  if (options.slowdown < 1.0) {
    std::fprintf(stderr, "--slowdown must be >= 1.0\n");
    return 2;
  }
  const long long executors = cli.get_int("executor-threads", 4);
  if (executors < 1) {
    std::fprintf(stderr, "--executor-threads must be >= 1\n");
    return 2;
  }
  options.executor_threads = static_cast<std::size_t>(executors);

  plbhec::net::WorkerDaemon daemon(options);
  std::printf("plbhec-workerd '%s' listening on 127.0.0.1:%u (slowdown %.2f)\n",
              options.name.c_str(), daemon.port(), options.slowdown);
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    // The daemon's own threads do all the work; this thread just waits
    // for a signal (sleep via sigsuspend-free portable polling).
    struct timespec ts = {0, 100'000'000};  // 100 ms
    nanosleep(&ts, nullptr);
  }

  const std::uint64_t served = daemon.blocks_served();
  daemon.stop();
  std::printf("plbhec-workerd stopping after %llu blocks served\n",
              static_cast<unsigned long long>(served));
  return 0;
}
